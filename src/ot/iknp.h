// IKNP oblivious-transfer extension (Ishai–Kilian–Nissim–Petrank 2003).
//
// Turns kappa = 128 base OTs (base_ot.h) into an unbounded stream of cheap
// random OTs on single bits using only symmetric crypto (ChaCha20 PRG +
// SHA-256 hashing). The paper notes that Wysteria's GMW backend relies on
// exactly this optimization to keep MPC traffic low (§5.3, [41, 46]).
//
// Roles are named from the *extension* point of view: the extension sender
// obtains random bit pairs (r0_j, r1_j); the extension receiver chooses c_j
// and learns r_{c_j}. Internally the base OTs run with the roles reversed.
//
// Output bits are packed little-endian into uint64 words: bit j of the
// stream lives at word j/64, bit j%64.
#ifndef SRC_OT_IKNP_H_
#define SRC_OT_IKNP_H_

#include <cstdint>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/net/transport.h"
#include "src/ot/base_ot.h"

namespace dstress::ot {

inline constexpr int kIknpKappa = 128;

// Packed bit vector helpers shared by the MPC layer.
using PackedBits = std::vector<uint64_t>;
inline size_t PackedWords(size_t bits) { return (bits + 63) / 64; }
inline bool GetBit(const PackedBits& v, size_t i) { return (v[i / 64] >> (i % 64)) & 1; }
inline void SetBit(PackedBits& v, size_t i, bool bit) {
  if (bit) {
    v[i / 64] |= 1ULL << (i % 64);
  } else {
    v[i / 64] &= ~(1ULL << (i % 64));
  }
}

struct RandomOtPairs {
  PackedBits r0;
  PackedBits r1;
  size_t count = 0;
};

struct RandomOtChosen {
  PackedBits r;  // r_j = (c_j ? r1_j : r0_j)
  size_t count = 0;
};

class IknpSender {
 public:
  // Runs the base-OT setup with `peer` (blocking; the peer must construct a
  // matching IknpReceiver).
  IknpSender(net::Transport* net, net::NodeId self, net::NodeId peer, crypto::ChaCha20Prg& prg,
             net::SessionId session = 0);

  // Produces `count` random OT pairs. Blocking: the receiver must call
  // Extend with the same count.
  RandomOtPairs Extend(size_t count);

 private:
  net::Transport* net_;
  net::NodeId self_;
  net::NodeId peer_;
  net::SessionId session_;
  PackedBits s_bits_;                         // kappa choice bits
  std::vector<crypto::ChaCha20Prg> seed_prg_;  // PRG(k_i^{s_i})
  uint64_t ot_counter_ = 0;
};

class IknpReceiver {
 public:
  IknpReceiver(net::Transport* net, net::NodeId self, net::NodeId peer, crypto::ChaCha20Prg& prg,
               net::SessionId session = 0);

  // choices is a packed bit vector of length >= count bits.
  RandomOtChosen Extend(const PackedBits& choices, size_t count);

 private:
  net::Transport* net_;
  net::NodeId self_;
  net::NodeId peer_;
  net::SessionId session_;
  std::vector<crypto::ChaCha20Prg> prg0_;  // PRG(k_i^0)
  std::vector<crypto::ChaCha20Prg> prg1_;  // PRG(k_i^1)
  uint64_t ot_counter_ = 0;
};

}  // namespace dstress::ot

#endif  // SRC_OT_IKNP_H_
