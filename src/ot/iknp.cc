#include "src/ot/iknp.h"

#include <cstring>

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace dstress::ot {

namespace {

// Expands a 16-byte base-OT key into a ChaCha20 PRG.
crypto::ChaCha20Prg PrgFromKey(const OtKey& key, uint64_t stream_id) {
  auto digest = crypto::Sha256::Hash(key.data(), key.size());
  std::array<uint8_t, 32> full;
  std::memcpy(full.data(), digest.data(), 32);
  return crypto::ChaCha20Prg(full, stream_id);
}

// Correlation-robust hash H(index, row) -> 1 bit. SHA-256 keeps the
// random-oracle modelling conservative; one hash per extended OT.
bool HashRowBit(uint64_t index, const uint64_t row[2]) {
  uint8_t buf[24];
  std::memcpy(buf, &index, 8);
  std::memcpy(buf + 8, row, 16);
  auto digest = crypto::Sha256::Hash(buf, sizeof(buf));
  return (digest[0] & 1) != 0;
}

// Transposes a kappa-column bit matrix (each column `words` uint64s of
// packed bits) into per-row 128-bit vectors. rows must have 2*count u64s.
void TransposeColumns(const std::vector<PackedBits>& cols, size_t count, uint64_t* rows) {
  std::memset(rows, 0, count * 2 * sizeof(uint64_t));
  for (int i = 0; i < kIknpKappa; i++) {
    const PackedBits& col = cols[i];
    for (size_t j = 0; j < count; j++) {
      if ((col[j / 64] >> (j % 64)) & 1) {
        rows[2 * j + i / 64] |= 1ULL << (i % 64);
      }
    }
  }
}

PackedBits PrgBits(crypto::ChaCha20Prg& prg, size_t words) {
  PackedBits out(words);
  prg.Fill(reinterpret_cast<uint8_t*>(out.data()), words * 8);
  return out;
}

}  // namespace

IknpSender::IknpSender(net::Transport* net, net::NodeId self, net::NodeId peer,
                       crypto::ChaCha20Prg& prg, net::SessionId session)
    : net_(net), self_(self), peer_(peer), session_(session) {
  // Extension sender = base-OT receiver with choice vector s.
  s_bits_.assign(2, 0);
  std::vector<bool> choices(kIknpKappa);
  for (int i = 0; i < kIknpKappa; i++) {
    bool bit = prg.NextBit();
    choices[i] = bit;
    SetBit(s_bits_, i, bit);
  }
  auto base = BaseOtRecv(net_, self_, peer_, choices, prg, session_);
  seed_prg_.reserve(kIknpKappa);
  for (int i = 0; i < kIknpKappa; i++) {
    seed_prg_.push_back(PrgFromKey(base.keys[i], static_cast<uint64_t>(i)));
  }
}

RandomOtPairs IknpSender::Extend(size_t count) {
  size_t words = PackedWords(count);
  Bytes u_block = net_->Recv(self_, peer_, session_);
  DSTRESS_CHECK(u_block.size() == static_cast<size_t>(kIknpKappa) * words * 8);

  std::vector<PackedBits> q_cols(kIknpKappa);
  for (int i = 0; i < kIknpKappa; i++) {
    PackedBits q = PrgBits(seed_prg_[i], words);
    if (GetBit(s_bits_, static_cast<size_t>(i))) {
      const uint8_t* u = u_block.data() + static_cast<size_t>(i) * words * 8;
      for (size_t w = 0; w < words; w++) {
        uint64_t uw;
        std::memcpy(&uw, u + w * 8, 8);
        q[w] ^= uw;
      }
    }
    q_cols[i] = std::move(q);
  }

  std::vector<uint64_t> rows(count * 2);
  TransposeColumns(q_cols, count, rows.data());

  RandomOtPairs out;
  out.count = count;
  out.r0.assign(words, 0);
  out.r1.assign(words, 0);
  for (size_t j = 0; j < count; j++) {
    uint64_t row[2] = {rows[2 * j], rows[2 * j + 1]};
    uint64_t row_xor_s[2] = {row[0] ^ s_bits_[0], row[1] ^ s_bits_[1]};
    SetBit(out.r0, j, HashRowBit(ot_counter_ + j, row));
    SetBit(out.r1, j, HashRowBit(ot_counter_ + j, row_xor_s));
  }
  ot_counter_ += count;
  return out;
}

IknpReceiver::IknpReceiver(net::Transport* net, net::NodeId self, net::NodeId peer,
                           crypto::ChaCha20Prg& prg, net::SessionId session)
    : net_(net), self_(self), peer_(peer), session_(session) {
  auto base = BaseOtSend(net_, self_, peer_, kIknpKappa, prg, session_);
  prg0_.reserve(kIknpKappa);
  prg1_.reserve(kIknpKappa);
  for (int i = 0; i < kIknpKappa; i++) {
    prg0_.push_back(PrgFromKey(base.keys0[i], static_cast<uint64_t>(i)));
    prg1_.push_back(PrgFromKey(base.keys1[i], static_cast<uint64_t>(i)));
  }
}

RandomOtChosen IknpReceiver::Extend(const PackedBits& choices, size_t count) {
  size_t words = PackedWords(count);
  DSTRESS_CHECK(choices.size() >= words);

  std::vector<PackedBits> t_cols(kIknpKappa);
  ByteWriter u_block;
  for (int i = 0; i < kIknpKappa; i++) {
    PackedBits t = PrgBits(prg0_[i], words);
    PackedBits mask = PrgBits(prg1_[i], words);
    for (size_t w = 0; w < words; w++) {
      uint64_t u = t[w] ^ mask[w] ^ choices[w];
      u_block.U64(u);
    }
    t_cols[i] = std::move(t);
  }
  net_->Send(self_, peer_, u_block.Take(), session_);

  std::vector<uint64_t> rows(count * 2);
  TransposeColumns(t_cols, count, rows.data());

  RandomOtChosen out;
  out.count = count;
  out.r.assign(words, 0);
  for (size_t j = 0; j < count; j++) {
    uint64_t row[2] = {rows[2 * j], rows[2 * j + 1]};
    SetBit(out.r, j, HashRowBit(ot_counter_ + j, row));
  }
  ot_counter_ += count;
  return out;
}

}  // namespace dstress::ot
