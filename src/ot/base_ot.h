// Base oblivious transfer (Chou–Orlandi "simplest OT"), honest-but-curious
// variant, over the from-scratch secp256k1 group.
//
// The sender publishes A = a*G; for the i-th transfer the receiver replies
// with B_i = b_i*G (choice 0) or A + b_i*G (choice 1). The sender derives
//   k_i^0 = H(i, a*B_i)        k_i^1 = H(i, a*(B_i - A))
// and the receiver derives k_i^{c_i} = H(i, b_i*A). These 128-bit keys seed
// the IKNP OT extension (iknp.h); DStress's HbC threat model (paper §3.2)
// matches the HbC security of this construction.
#ifndef SRC_OT_BASE_OT_H_
#define SRC_OT_BASE_OT_H_

#include <array>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/net/transport.h"

namespace dstress::ot {

using OtKey = std::array<uint8_t, 16>;

struct BaseOtSenderOutput {
  std::vector<OtKey> keys0;
  std::vector<OtKey> keys1;
};

struct BaseOtReceiverOutput {
  std::vector<OtKey> keys;  // keys[i] == (choices[i] ? keys1[i] : keys0[i])
};

// Both calls block until the peer completes its half. `count` transfers are
// performed in one batch with a single round trip.
BaseOtSenderOutput BaseOtSend(net::Transport* net, net::NodeId self, net::NodeId peer, int count,
                              crypto::ChaCha20Prg& prg, net::SessionId session = 0);

BaseOtReceiverOutput BaseOtRecv(net::Transport* net, net::NodeId self, net::NodeId peer,
                                const std::vector<bool>& choices, crypto::ChaCha20Prg& prg,
                                net::SessionId session = 0);

// Process-wide count of base-OT protocol executions (one per BaseOtSend or
// BaseOtRecv call, i.e. one per batch of `count` transfers — the unit the
// EC-multiplication setup cost is paid in). Base OTs dominate OT-mode wall
// time, so tests and bench_fig6 assert on deltas of this counter to pin the
// triple factory's O(roles x peers) -> O(node pairs) setup dedup. Both
// endpoints of an in-process (sim transport) pairing increment it, so one
// IKNP sender/receiver setup between two nodes counts 2.
uint64_t BaseOtExecutionCount();

}  // namespace dstress::ot

#endif  // SRC_OT_BASE_OT_H_
