// Private histogram: a packed multi-counter release.
//
// DStress's aggregation function is a single sum (that restriction enables
// the §3.6 aggregation tree), but a sum over *packed* per-vertex indicator
// words releases a whole histogram in one run: bucket b occupies
// `counter_bits` bits at offset b·counter_bits of the aggregate word, each
// vertex contributes a 1 in exactly one bucket's field, and the fields
// cannot carry into each other as long as counter_bits can hold N.
//
// The released value is the noised packed word; Unpack() splits it back
// into per-bucket counts. Note the DP granularity: the geometric noise is
// added to the *packed integer*, so a single released figure carries the
// usual one-dimensional noise — callers who need per-bucket independent
// noise should run one release per bucket and pay the budget for each.
// (The packed form matches wPINQ-style "one query, one release"
// accounting for a categorical attribute.)
#ifndef SRC_PROGRAMS_HISTOGRAM_H_
#define SRC_PROGRAMS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/core/vertex_program.h"
#include "src/mpc/sharing.h"

namespace dstress::programs {

struct HistogramParams {
  int degree_bound = 1;
  int num_buckets = 4;
  // Bits per bucket counter; 2^counter_bits must exceed the vertex count.
  int counter_bits = 8;
  dp::NoiseCircuitSpec noise;

  int aggregate_bits() const { return num_buckets * counter_bits; }
};

// State: the vertex's bucket index (counter_bits wide — the circuit decodes
// it to a one-hot packed contribution).
core::VertexProgram BuildHistogramProgram(const HistogramParams& params);

// Encodes per-vertex bucket indices (each must be < num_buckets).
std::vector<mpc::BitVector> MakeHistogramStates(const std::vector<int>& buckets,
                                                const HistogramParams& params);

// Splits a released packed word into per-bucket counts. Noise on the packed
// integer can push individual fields below zero / above the field range;
// fields are reported as raw unsigned slices of the two's-complement word.
std::vector<uint32_t> UnpackHistogram(int64_t released, const HistogramParams& params);

// Reference: exact packed histogram of `buckets`.
int64_t PlaintextPackedHistogram(const std::vector<int>& buckets,
                                 const HistogramParams& params);

}  // namespace dstress::programs

#endif  // SRC_PROGRAMS_HISTOGRAM_H_
