#include "src/programs/histogram.h"

#include "src/common/check.h"

namespace dstress::programs {

core::VertexProgram BuildHistogramProgram(const HistogramParams& params) {
  DSTRESS_CHECK(params.degree_bound >= 1);
  DSTRESS_CHECK(params.num_buckets >= 1);
  DSTRESS_CHECK(params.counter_bits >= 1);
  DSTRESS_CHECK(params.aggregate_bits() <= 62);  // released as int64 with sign headroom

  core::VertexProgram program;
  program.state_bits = params.counter_bits;
  program.message_bits = 1;  // no propagation; all messages are ⊥
  program.degree_bound = params.degree_bound;
  program.iterations = 1;
  program.aggregate_bits = params.aggregate_bits();
  program.output_noise = params.noise;

  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                            std::vector<circuit::Word>* out_msgs) {
    *new_state = state;
    out_msgs->assign(in_msgs.size(), circuit::Word(1, b.Zero()));
  };
  const int num_buckets = params.num_buckets;
  const int counter_bits = params.counter_bits;
  program.build_contribution = [num_buckets, counter_bits](
                                   circuit::Builder& b,
                                   const circuit::Word& state) -> circuit::Word {
    // One-hot decode: contribution bit (bucket*counter_bits) = [state == bucket].
    circuit::Word contribution(num_buckets * counter_bits, b.Zero());
    for (int bucket = 0; bucket < num_buckets; bucket++) {
      circuit::Word constant = b.ConstWord(static_cast<uint64_t>(bucket), counter_bits);
      contribution[bucket * counter_bits] = b.Eq(state, constant);
    }
    return contribution;
  };
  return program;
}

std::vector<mpc::BitVector> MakeHistogramStates(const std::vector<int>& buckets,
                                                const HistogramParams& params) {
  std::vector<mpc::BitVector> states;
  states.reserve(buckets.size());
  for (int bucket : buckets) {
    DSTRESS_CHECK(bucket >= 0 && bucket < params.num_buckets);
    states.push_back(mpc::WordToBits(static_cast<uint64_t>(bucket), params.counter_bits));
  }
  return states;
}

std::vector<uint32_t> UnpackHistogram(int64_t released, const HistogramParams& params) {
  uint64_t word = static_cast<uint64_t>(released);
  uint64_t field_mask = (uint64_t{1} << params.counter_bits) - 1;
  std::vector<uint32_t> counts(params.num_buckets);
  for (int bucket = 0; bucket < params.num_buckets; bucket++) {
    counts[bucket] =
        static_cast<uint32_t>((word >> (bucket * params.counter_bits)) & field_mask);
  }
  return counts;
}

int64_t PlaintextPackedHistogram(const std::vector<int>& buckets,
                                 const HistogramParams& params) {
  int64_t packed = 0;
  for (int bucket : buckets) {
    DSTRESS_CHECK(bucket >= 0 && bucket < params.num_buckets);
    packed += int64_t{1} << (bucket * params.counter_bits);
  }
  return packed;
}

}  // namespace dstress::programs
