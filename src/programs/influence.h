// Private influence diffusion ("heat kernel" / truncated random walk).
//
// Every vertex holds a private fixed-point mass. Each round it pushes a
// 2^-out_shift fraction of its mass along every out-slot (no-op slots leak
// their fraction into the void — the public degree bound D must not reveal
// true degrees, so the circuit cannot treat real and padded slots
// differently), keeps a 2^-keep_shift fraction, and absorbs whatever its
// in-neighbors pushed. After a fixed number of rounds the aggregate
// releases the noised total remaining mass.
//
// This models influence/exposure propagation in social-science and
// criminal-intelligence graphs (§3.1's citation list) where both the seed
// masses and the link structure are confidential. All arithmetic is
// wrapping mod 2^16, mirrored exactly by the plaintext reference, so tests
// compare bit-for-bit.
#ifndef SRC_PROGRAMS_INFLUENCE_H_
#define SRC_PROGRAMS_INFLUENCE_H_

#include <cstdint>
#include <vector>

#include "src/core/vertex_program.h"
#include "src/graph/graph.h"
#include "src/mpc/sharing.h"

namespace dstress::programs {

struct InfluenceParams {
  int degree_bound = 0;
  int iterations = 1;
  // Fraction pushed per out-slot: mass >> out_shift.
  int out_shift = 3;
  // Fraction retained: mass >> keep_shift.
  int keep_shift = 1;
  int aggregate_bits = 24;
  dp::NoiseCircuitSpec noise;
};

inline constexpr int kInfluenceStateBits = 16;

core::VertexProgram BuildInfluenceProgram(const InfluenceParams& params);

// Encodes per-vertex initial masses as 16-bit states.
std::vector<mpc::BitVector> MakeInfluenceStates(const std::vector<uint16_t>& masses);

// Cleartext reference with identical wrapping semantics. Returns the final
// per-vertex masses; the released aggregate is their sum mod 2^aggregate_bits.
std::vector<uint16_t> PlaintextInfluence(const graph::Graph& g,
                                         const std::vector<uint16_t>& masses,
                                         const InfluenceParams& params);

}  // namespace dstress::programs

#endif  // SRC_PROGRAMS_INFLUENCE_H_
