#include "src/programs/components.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "src/common/check.h"

namespace dstress::programs {

core::VertexProgram BuildComponentsProgram(const ComponentsParams& params) {
  DSTRESS_CHECK(params.degree_bound > 0);
  DSTRESS_CHECK(params.iterations >= 1);
  DSTRESS_CHECK(params.label_bits >= 1);

  core::VertexProgram program;
  const int lb = params.label_bits;
  program.state_bits = 2 * lb;
  program.message_bits = lb;
  program.degree_bound = params.degree_bound;
  program.iterations = params.iterations;
  program.aggregate_bits = params.aggregate_bits;
  program.output_noise = params.noise;

  program.build_update = [lb](circuit::Builder& b, const circuit::Word& state,
                              const std::vector<circuit::Word>& in_msgs,
                              circuit::Word* new_state, std::vector<circuit::Word>* out_msgs) {
    circuit::Word id(state.begin(), state.begin() + lb);
    circuit::Word label(state.begin() + lb, state.end());
    for (const auto& msg : in_msgs) {
      // Adopt msg iff it is a real label (nonzero) and smaller than ours.
      circuit::Wire real = b.Not(b.EqZero(msg));
      circuit::Wire smaller = b.Ult(msg, label);
      label = b.MuxWord(b.And(real, smaller), msg, label);
    }
    *new_state = id;
    new_state->insert(new_state->end(), label.begin(), label.end());
    out_msgs->assign(in_msgs.size(), label);
  };
  const int aggregate_bits = params.aggregate_bits;
  program.build_contribution = [lb, aggregate_bits](circuit::Builder& b,
                                                    const circuit::Word& state) -> circuit::Word {
    circuit::Word id(state.begin(), state.begin() + lb);
    circuit::Word label(state.begin() + lb, state.end());
    circuit::Word contribution(aggregate_bits, b.Zero());
    contribution[0] = b.Eq(id, label);
    return contribution;
  };
  return program;
}

std::vector<mpc::BitVector> MakeComponentsStates(int num_vertices, int label_bits) {
  DSTRESS_CHECK(static_cast<int64_t>(num_vertices) + 1 <= (int64_t{1} << label_bits));
  std::vector<mpc::BitVector> states;
  states.reserve(num_vertices);
  for (int v = 0; v < num_vertices; v++) {
    mpc::BitVector bits(2 * label_bits, 0);
    uint32_t label = static_cast<uint32_t>(v) + 1;
    for (int i = 0; i < label_bits; i++) {
      uint8_t bit = static_cast<uint8_t>((label >> i) & 1);
      bits[i] = bit;               // id half
      bits[label_bits + i] = bit;  // label half
    }
    states.push_back(std::move(bits));
  }
  return states;
}

int PlaintextComponentsCount(const graph::Graph& g, int iterations) {
  int n = g.num_vertices();
  std::vector<uint32_t> label(n);
  for (int v = 0; v < n; v++) {
    label[v] = static_cast<uint32_t>(v) + 1;
  }
  for (int round = 0; round < iterations; round++) {
    std::vector<uint32_t> next = label;
    for (int v = 0; v < n; v++) {
      for (int u : g.InNeighbors(v)) {
        next[v] = std::min(next[v], label[u]);
      }
    }
    label = std::move(next);
  }
  int roots = 0;
  for (int v = 0; v < n; v++) {
    if (label[v] == static_cast<uint32_t>(v) + 1) {
      roots++;
    }
  }
  return roots;
}

int WeaklyConnectedComponents(const graph::Graph& g) {
  int n = g.num_vertices();
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (auto [u, v] : g.Edges()) {
    parent[find(u)] = find(v);
  }
  int components = 0;
  for (int v = 0; v < n; v++) {
    if (find(v) == v) {
      components++;
    }
  }
  return components;
}

}  // namespace dstress::programs
