#include "src/programs/reachability.h"

#include <queue>

#include "src/common/check.h"

namespace dstress::programs {

namespace {
constexpr int kStateBits = 8;
constexpr int kMessageBits = 8;
}  // namespace

core::VertexProgram BuildReachabilityProgram(const ReachabilityParams& params) {
  DSTRESS_CHECK(params.degree_bound > 0);
  DSTRESS_CHECK(params.hops >= 1);
  core::VertexProgram program;
  program.state_bits = kStateBits;
  program.message_bits = kMessageBits;
  program.degree_bound = params.degree_bound;
  program.iterations = params.hops;
  program.aggregate_bits = params.aggregate_bits;
  program.output_noise = params.noise;

  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                            std::vector<circuit::Word>* out_msgs) {
    circuit::Wire failed = state[0];
    for (const auto& msg : in_msgs) {
      failed = b.Or(failed, msg[0]);
    }
    *new_state = circuit::Word(state.size(), b.Zero());
    (*new_state)[0] = failed;
    circuit::Word broadcast(kMessageBits, b.Zero());
    broadcast[0] = failed;
    out_msgs->assign(in_msgs.size(), broadcast);
  };
  const int aggregate_bits = params.aggregate_bits;
  program.build_contribution = [aggregate_bits](circuit::Builder& b,
                                                const circuit::Word& state) -> circuit::Word {
    circuit::Word contribution(aggregate_bits, b.Zero());
    contribution[0] = state[0];
    return contribution;
  };
  return program;
}

std::vector<mpc::BitVector> MakeReachabilityStates(int num_vertices,
                                                   const std::vector<int>& sources) {
  std::vector<mpc::BitVector> states(num_vertices, mpc::BitVector(kStateBits, 0));
  for (int v : sources) {
    DSTRESS_CHECK(v >= 0 && v < num_vertices);
    states[v][0] = 1;
  }
  return states;
}

int PlaintextReachableCount(const graph::Graph& g, const std::vector<int>& sources, int hops) {
  std::vector<int> dist(g.num_vertices(), -1);
  std::queue<int> frontier;
  for (int v : sources) {
    if (dist[v] < 0) {
      dist[v] = 0;
      frontier.push(v);
    }
  }
  int reachable = 0;
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    reachable++;
    if (dist[v] == hops) {
      continue;
    }
    for (int u : g.OutNeighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }
  return reachable;
}

}  // namespace dstress::programs
