// Private sum: the smallest useful DStress program, and the canonical
// "private census" building block — every participant contributes one
// confidential value, the system releases the noised total, and nothing
// else (not even ⊥-padded communication patterns) leaks.
//
// With value = out-degree this computes a noised edge count; with value =
// exposure it is the degenerate one-round case of the financial TDS. The
// update function is the identity and all messages are ⊥, so the program
// doubles as the minimal end-to-end exercise of every runtime phase
// (quickstart example and smoke tests use it).
#ifndef SRC_PROGRAMS_PRIVATE_SUM_H_
#define SRC_PROGRAMS_PRIVATE_SUM_H_

#include <cstdint>
#include <vector>

#include "src/core/vertex_program.h"
#include "src/mpc/sharing.h"

namespace dstress::programs {

struct PrivateSumParams {
  int degree_bound = 1;
  int value_bits = 16;
  int aggregate_bits = 24;
  dp::NoiseCircuitSpec noise;
};

core::VertexProgram BuildPrivateSumProgram(const PrivateSumParams& params);

// Encodes per-vertex contributions as value_bits-wide states.
std::vector<mpc::BitVector> MakePrivateSumStates(const std::vector<uint32_t>& values,
                                                 int value_bits);

// The exact (un-noised) released value: sum of contributions mod
// 2^aggregate_bits, interpreted as the runtime does.
int64_t PlaintextSum(const std::vector<uint32_t>& values, int aggregate_bits);

}  // namespace dstress::programs

#endif  // SRC_PROGRAMS_PRIVATE_SUM_H_
