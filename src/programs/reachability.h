// Private bounded-hop reachability (the "cloud reliability" / blast-radius
// use case of paper §3.1, citing Zhai et al.'s independence-as-a-service).
//
// Each vertex privately knows whether it belongs to the initially-failed
// set. A failed vertex broadcasts 1 to its out-neighbors; a healthy vertex
// broadcasts the no-op 0; any vertex with a failed in-neighbor fails. After
// `hops` rounds the aggregate releases the noised count of failed vertices.
//
// Sensitivity note: one vertex flipping its initial bit can change the
// count by the whole downstream cone, so the edge-DP sensitivity of raw
// reachability is large (§6 discusses why many graph statistics are hard to
// release). The program is still useful under the paper's model where the
// *membership bit* is the protected input and the topology is assumed
// degree-bounded: flipping one source changes the count by at most the
// vertices within `hops` of it, and callers pick `sensitivity` accordingly.
#ifndef SRC_PROGRAMS_REACHABILITY_H_
#define SRC_PROGRAMS_REACHABILITY_H_

#include <vector>

#include "src/core/vertex_program.h"
#include "src/graph/graph.h"
#include "src/mpc/sharing.h"

namespace dstress::programs {

struct ReachabilityParams {
  int degree_bound = 0;
  int hops = 1;
  int aggregate_bits = 16;
  // Output-noise spec (alpha = e^{-eps/sensitivity}); alpha ~ 0 disables
  // noise for testing.
  dp::NoiseCircuitSpec noise;
};

// Builds the vertex program. Initial state per vertex: bit 0 = initially
// failed (see MakeReachabilityStates).
core::VertexProgram BuildReachabilityProgram(const ReachabilityParams& params);

// Encodes the initial states: one 8-bit word per vertex, bit 0 set for
// members of `sources`.
std::vector<mpc::BitVector> MakeReachabilityStates(int num_vertices,
                                                   const std::vector<int>& sources);

// Cleartext reference: number of vertices reachable from `sources` within
// `hops` edges (sources included).
int PlaintextReachableCount(const graph::Graph& g, const std::vector<int>& sources, int hops);

}  // namespace dstress::programs

#endif  // SRC_PROGRAMS_REACHABILITY_H_
