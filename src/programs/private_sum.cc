#include "src/programs/private_sum.h"

#include "src/common/check.h"

namespace dstress::programs {

core::VertexProgram BuildPrivateSumProgram(const PrivateSumParams& params) {
  DSTRESS_CHECK(params.degree_bound >= 1);
  DSTRESS_CHECK(params.value_bits >= 1);
  DSTRESS_CHECK(params.aggregate_bits >= params.value_bits);

  core::VertexProgram program;
  program.state_bits = params.value_bits;
  program.message_bits = 1;  // all messages are ⊥; keep the slots minimal
  program.degree_bound = params.degree_bound;
  program.iterations = 1;
  program.aggregate_bits = params.aggregate_bits;
  program.output_noise = params.noise;

  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                            std::vector<circuit::Word>* out_msgs) {
    *new_state = state;
    out_msgs->assign(in_msgs.size(), circuit::Word(1, b.Zero()));
  };
  const int aggregate_bits = params.aggregate_bits;
  program.build_contribution = [aggregate_bits](circuit::Builder& b,
                                                const circuit::Word& state) -> circuit::Word {
    return b.ZeroExtend(state, aggregate_bits);
  };
  return program;
}

std::vector<mpc::BitVector> MakePrivateSumStates(const std::vector<uint32_t>& values,
                                                 int value_bits) {
  std::vector<mpc::BitVector> states;
  states.reserve(values.size());
  for (uint32_t value : values) {
    DSTRESS_CHECK(value_bits >= 32 || value < (uint32_t{1} << value_bits));
    mpc::BitVector bits(value_bits, 0);
    for (int i = 0; i < value_bits && i < 32; i++) {
      bits[i] = static_cast<uint8_t>((value >> i) & 1);
    }
    states.push_back(std::move(bits));
  }
  return states;
}

int64_t PlaintextSum(const std::vector<uint32_t>& values, int aggregate_bits) {
  uint64_t sum = 0;
  for (uint32_t value : values) {
    sum += value;
  }
  // The runtime opens a two's-complement aggregate_bits-wide word.
  uint64_t mask = (aggregate_bits >= 64) ? ~uint64_t{0} : ((uint64_t{1} << aggregate_bits) - 1);
  uint64_t wrapped = sum & mask;
  if (aggregate_bits < 64 && (wrapped >> (aggregate_bits - 1)) != 0) {
    return static_cast<int64_t>(wrapped) - (int64_t{1} << aggregate_bits);
  }
  return static_cast<int64_t>(wrapped);
}

}  // namespace dstress::programs
