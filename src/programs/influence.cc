#include "src/programs/influence.h"

#include "src/common/check.h"

namespace dstress::programs {

core::VertexProgram BuildInfluenceProgram(const InfluenceParams& params) {
  DSTRESS_CHECK(params.degree_bound > 0);
  DSTRESS_CHECK(params.iterations >= 1);
  DSTRESS_CHECK(params.out_shift >= 0 && params.out_shift < kInfluenceStateBits);
  DSTRESS_CHECK(params.keep_shift >= 0 && params.keep_shift < kInfluenceStateBits);

  core::VertexProgram program;
  program.state_bits = kInfluenceStateBits;
  program.message_bits = kInfluenceStateBits;
  program.degree_bound = params.degree_bound;
  program.iterations = params.iterations;
  program.aggregate_bits = params.aggregate_bits;
  program.output_noise = params.noise;

  const int out_shift = params.out_shift;
  const int keep_shift = params.keep_shift;
  program.build_update = [out_shift, keep_shift](
                             circuit::Builder& b, const circuit::Word& state,
                             const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                             std::vector<circuit::Word>* out_msgs) {
    // Absorb first, then push from the updated mass: the runtime executes
    // iterations+1 computation steps (the +1 is §3.6's final step), so this
    // ordering gives the clean recurrence
    //   s^t = (s^{t-1} >> keep_shift) + sum_in (s^{t-1} >> out_shift)
    // after an initial pure-decay step, which PlaintextInfluence mirrors.
    circuit::Word acc = b.ShiftRightConst(state, keep_shift);
    for (const auto& msg : in_msgs) {
      acc = b.Add(acc, msg);
    }
    *new_state = acc;
    out_msgs->assign(in_msgs.size(), b.ShiftRightConst(acc, out_shift));
  };
  const int aggregate_bits = params.aggregate_bits;
  program.build_contribution = [aggregate_bits](circuit::Builder& b,
                                                const circuit::Word& state) -> circuit::Word {
    return b.ZeroExtend(state, aggregate_bits);
  };
  return program;
}

std::vector<mpc::BitVector> MakeInfluenceStates(const std::vector<uint16_t>& masses) {
  std::vector<mpc::BitVector> states;
  states.reserve(masses.size());
  for (uint16_t mass : masses) {
    mpc::BitVector bits(kInfluenceStateBits, 0);
    for (int i = 0; i < kInfluenceStateBits; i++) {
      bits[i] = static_cast<uint8_t>((mass >> i) & 1);
    }
    states.push_back(std::move(bits));
  }
  return states;
}

std::vector<uint16_t> PlaintextInfluence(const graph::Graph& g,
                                         const std::vector<uint16_t>& masses,
                                         const InfluenceParams& params) {
  DSTRESS_CHECK(static_cast<int>(masses.size()) == g.num_vertices());
  // First computation step sees only no-op messages: pure decay.
  std::vector<uint16_t> current(masses.size());
  for (size_t v = 0; v < masses.size(); v++) {
    current[v] = static_cast<uint16_t>(masses[v] >> params.keep_shift);
  }
  // Each (communication, computation) pair then applies the full recurrence.
  for (int round = 0; round < params.iterations; round++) {
    std::vector<uint16_t> next(current.size(), 0);
    for (int v = 0; v < g.num_vertices(); v++) {
      uint16_t acc = static_cast<uint16_t>(current[v] >> params.keep_shift);
      for (int u : g.InNeighbors(v)) {
        acc = static_cast<uint16_t>(acc + static_cast<uint16_t>(current[u] >> params.out_shift));
      }
      next[v] = acc;
    }
    current = std::move(next);
  }
  return current;
}

}  // namespace dstress::programs
