// Private component counting by min-label propagation.
//
// Every vertex starts with the public label id+1 (label 0 is reserved so
// the all-zero no-op message ⊥ can be told apart from a real label). Each
// round a vertex adopts the smallest nonzero label it has heard and
// re-broadcasts it; after I rounds the aggregate releases the noised count
// of vertices that still hold their own label — on a symmetric graph with
// I at least the largest component diameter this is exactly the number of
// connected components.
//
// What is private here is the *topology*: participants learn only the
// noised component count, not who is connected to whom (criminal-
// intelligence cell mapping, §3.1's Krebs/Sparrow citations, is the
// motivating shape). The labels themselves are public vertex ids.
#ifndef SRC_PROGRAMS_COMPONENTS_H_
#define SRC_PROGRAMS_COMPONENTS_H_

#include <vector>

#include "src/core/vertex_program.h"
#include "src/graph/graph.h"
#include "src/mpc/sharing.h"

namespace dstress::programs {

struct ComponentsParams {
  int degree_bound = 0;
  // Rounds of label propagation; needs to reach the largest component
  // diameter for an exact count.
  int iterations = 1;
  // Width of a label word; must satisfy num_vertices + 1 <= 2^label_bits.
  int label_bits = 10;
  int aggregate_bits = 16;
  dp::NoiseCircuitSpec noise;
};

// State layout: [id+1 (label_bits)] [current label (label_bits)].
core::VertexProgram BuildComponentsProgram(const ComponentsParams& params);

std::vector<mpc::BitVector> MakeComponentsStates(int num_vertices, int label_bits);

// Cleartext reference: min-label propagation for `iterations` rounds over
// in-neighbors, returning the number of vertices keeping their own label.
int PlaintextComponentsCount(const graph::Graph& g, int iterations);

// Convenience for tests: the true number of weakly connected components.
int WeaklyConnectedComponents(const graph::Graph& g);

}  // namespace dstress::programs

#endif  // SRC_PROGRAMS_COMPONENTS_H_
