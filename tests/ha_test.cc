// Tests for the src/ha fault-tolerance subsystem (docs/ha.md):
//
//  * ha::FailureDetector — the clock-free per-peer liveness state machine
//    the TCP driver's monitor thread runs;
//  * ha::ResumeLog + the seq-prefix helpers — exactly-once session resume
//    bookkeeping, including a randomized send/deliver/replay corpus;
//  * ha::RuntimeSnapshot — checkpoint codec, atomic save/load, and the
//    integrity/version/magic rejection paths;
//  * checkpoint-every + --resume through the engine over sim: a resumed
//    run must release the same figure as the uninterrupted run;
//  * ha::FaultyTransport — deterministic fault injection: a delay fault
//    must not perturb figures or traffic, and a kill on a backend without
//    process boundaries must wake blocked receivers with a clear abort.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cli/scenario.h"
#include "src/common/rng.h"
#include "src/engine/engine.h"
#include "src/ha/checkpoint.h"
#include "src/ha/failure_detector.h"
#include "src/ha/faulty.h"
#include "src/ha/resume.h"
#include "src/net/sim_network.h"
#include "src/net/transport_spec.h"

namespace dstress::ha {
namespace {

// ---------------------------------------------------------------------------
// FailureDetector

constexpr FailureDetectorParams kParams{/*suspect_after_ms=*/1000,
                                        /*dead_after_ms=*/3000};

TEST(FailureDetectorTest, StaysAliveWhileHeartbeatsArrive) {
  FailureDetector fd(3, kParams, /*now_ms=*/0);
  for (int64_t t = 500; t <= 5000; t += 500) {
    fd.OnHeartbeat(0, t);
    fd.OnHeartbeat(1, t);
    fd.OnHeartbeat(2, t);
    EXPECT_TRUE(fd.Tick(t + 499).empty()) << "t=" << t;
  }
  for (int peer = 0; peer < 3; peer++) {
    EXPECT_EQ(fd.health(peer), PeerHealth::kAlive);
    EXPECT_EQ(fd.DeadForMs(peer, 6000), 0);
  }
}

TEST(FailureDetectorTest, SilenceDegradesToSuspectThenDead) {
  FailureDetector fd(2, kParams, /*now_ms=*/0);
  // Peer 1 keeps heartbeating; only peer 0 goes silent.
  fd.OnHeartbeat(1, 999);
  EXPECT_TRUE(fd.Tick(999).empty());
  std::vector<FailureDetector::Transition> t1 = fd.Tick(1000);
  ASSERT_EQ(t1.size(), 1u);
  EXPECT_EQ(t1[0].peer, 0);
  EXPECT_EQ(t1[0].from, PeerHealth::kAlive);
  EXPECT_EQ(t1[0].to, PeerHealth::kSuspect);
  EXPECT_EQ(fd.health(0), PeerHealth::kSuspect);
  EXPECT_EQ(fd.health(1), PeerHealth::kAlive);

  fd.OnHeartbeat(1, 2999);
  EXPECT_TRUE(fd.Tick(2999).empty());
  fd.OnHeartbeat(1, 3000);
  std::vector<FailureDetector::Transition> t2 = fd.Tick(3000);
  ASSERT_EQ(t2.size(), 1u);
  EXPECT_EQ(t2[0].peer, 0);
  EXPECT_EQ(t2[0].from, PeerHealth::kSuspect);
  EXPECT_EQ(t2[0].to, PeerHealth::kDead);
  EXPECT_EQ(fd.health(0), PeerHealth::kDead);
  // A dead peer does not re-transition on later ticks.
  fd.OnHeartbeat(1, 10000);
  EXPECT_TRUE(fd.Tick(10000).empty());
  EXPECT_EQ(fd.health(1), PeerHealth::kAlive);
}

TEST(FailureDetectorTest, LateTickJumpsStraightToDeadAndBackdatesTheDeath) {
  FailureDetector fd(1, kParams, /*now_ms=*/0);
  // A monitor stalled past both thresholds reports one alive->dead jump.
  std::vector<FailureDetector::Transition> t = fd.Tick(5000);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, PeerHealth::kAlive);
  EXPECT_EQ(t[0].to, PeerHealth::kDead);
  // The death is dated at silence-budget expiry (t=3000), not at the tick.
  EXPECT_EQ(fd.DeadForMs(0, 5000), 2000);
}

TEST(FailureDetectorTest, HeartbeatRevivesFromAnyState) {
  FailureDetector fd(1, kParams, /*now_ms=*/0);
  fd.Tick(1500);
  ASSERT_EQ(fd.health(0), PeerHealth::kSuspect);
  fd.OnHeartbeat(0, 1600);
  EXPECT_EQ(fd.health(0), PeerHealth::kAlive);

  fd.Tick(9999);
  ASSERT_EQ(fd.health(0), PeerHealth::kDead);
  fd.OnHeartbeat(0, 10000);  // a resumed session re-opens the window
  EXPECT_EQ(fd.health(0), PeerHealth::kAlive);
  EXPECT_EQ(fd.DeadForMs(0, 10000), 0);
  EXPECT_TRUE(fd.Tick(10999).empty());
}

TEST(FailureDetectorTest, ConnectionLossIsImmediateDeath) {
  FailureDetector fd(2, kParams, /*now_ms=*/0);
  fd.OnConnectionLoss(1, 100);  // way inside the silence budget
  EXPECT_EQ(fd.health(1), PeerHealth::kDead);
  EXPECT_EQ(fd.health(0), PeerHealth::kAlive);
  EXPECT_EQ(fd.DeadForMs(1, 2600), 2500);
  // Re-reporting the loss does not re-date the death.
  fd.OnConnectionLoss(1, 2000);
  EXPECT_EQ(fd.DeadForMs(1, 2600), 2500);
}

// ---------------------------------------------------------------------------
// Sequence-prefix helpers

TEST(SeqWrapTest, RoundTripsPayloads) {
  const Bytes payload = {9, 8, 7, 6, 5};
  Bytes wrapped = WrapSeq(0x1122334455667788ULL, payload);
  ASSERT_EQ(wrapped.size(), payload.size() + 8);
  EXPECT_EQ(PeekSeq(wrapped), 0x1122334455667788ULL);
  EXPECT_EQ(StripSeq(wrapped), payload);

  Bytes empty = WrapSeq(0, Bytes{});
  ASSERT_EQ(empty.size(), 8u);
  EXPECT_EQ(PeekSeq(empty), 0u);
  EXPECT_EQ(StripSeq(empty), Bytes{});
}

// ---------------------------------------------------------------------------
// ResumeLog

TEST(ResumeLogTest, SequencesAreIndependentPerChannel) {
  ResumeLog log(1 << 20);
  ChannelId a{0, 1, 5};
  ChannelId b{1, 0, 5};
  ChannelId c{0, 1, 6};
  EXPECT_EQ(log.NextSendSeq(a), 0u);
  EXPECT_EQ(log.NextSendSeq(a), 1u);
  EXPECT_EQ(log.NextSendSeq(b), 0u);
  EXPECT_EQ(log.NextSendSeq(c), 0u);
  EXPECT_EQ(log.NextSendSeq(a), 2u);
}

TEST(ResumeLogTest, DeliverAcceptsInOrderDropsDuplicatesAndStrays) {
  ResumeLog log(1 << 20);
  ChannelId ch{2, 3, 1};
  for (uint64_t seq = 0; seq < 4; seq++) {
    EXPECT_EQ(log.NextSendSeq(ch), seq);
    log.Buffer(ch, seq, Bytes{static_cast<uint8_t>(seq)});
  }
  EXPECT_EQ(log.buffered_frames(), 4u);
  EXPECT_EQ(log.buffered_bytes(), 4u);

  EXPECT_FALSE(log.Deliver(ch, 2));  // stray that overtook the replay
  EXPECT_TRUE(log.Deliver(ch, 0));
  EXPECT_FALSE(log.Deliver(ch, 0));  // duplicate
  EXPECT_TRUE(log.Deliver(ch, 1));
  EXPECT_EQ(log.buffered_frames(), 2u);
  EXPECT_EQ(log.buffered_bytes(), 2u);

  // Only seqs 2 and 3 are still undelivered, in order, on both endpoints'
  // replay sets; an uninvolved node sees nothing.
  for (int32_t node : {2, 3}) {
    std::vector<ResumeLog::ReplayFrame> replay = log.UndeliveredFor(node);
    ASSERT_EQ(replay.size(), 2u) << "node " << node;
    EXPECT_EQ(replay[0].from, 2);
    EXPECT_EQ(replay[0].encoded, Bytes{2});
    EXPECT_EQ(replay[1].encoded, Bytes{3});
  }
  EXPECT_TRUE(log.UndeliveredFor(7).empty());

  EXPECT_TRUE(log.Deliver(ch, 2));
  EXPECT_TRUE(log.Deliver(ch, 3));
  EXPECT_EQ(log.buffered_frames(), 0u);
  EXPECT_EQ(log.buffered_bytes(), 0u);
  EXPECT_TRUE(log.UndeliveredFor(2).empty());
}

// Randomized corpus: interleaved sends and in-order deliveries across many
// channels, mirrored by a reference model; every UndeliveredFor answer must
// equal the mirror's per-channel undelivered suffixes in channel order, and
// replaying them must deliver exactly once.
TEST(ResumeLogTest, RandomizedReplayCorpusMatchesReferenceModel) {
  struct Mirror {
    std::vector<Bytes> frames;
    uint64_t delivered = 0;
  };
  constexpr int kNodes = 4;
  std::vector<ChannelId> channels;
  for (int32_t from = 0; from < kNodes; from++) {
    for (int32_t to = 0; to < kNodes; to++) {
      if (from == to) continue;
      for (uint64_t session = 0; session < 2; session++) {
        channels.push_back(ChannelId{from, to, session});
      }
    }
  }

  Rng rng(4242);
  ResumeLog log(1 << 20);
  std::unordered_map<ChannelId, Mirror, ChannelIdHash> mirror;
  for (int step = 0; step < 4000; step++) {
    const ChannelId& ch = channels[rng.Below(channels.size())];
    Mirror& m = mirror[ch];
    if (m.delivered == m.frames.size() || rng.Bit()) {
      uint64_t seq = log.NextSendSeq(ch);
      ASSERT_EQ(seq, m.frames.size());
      Bytes frame{static_cast<uint8_t>(rng.Below(256)), static_cast<uint8_t>(seq),
                  static_cast<uint8_t>(ch.from)};
      log.Buffer(ch, seq, frame);
      m.frames.push_back(std::move(frame));
    } else {
      ASSERT_TRUE(log.Deliver(ch, m.delivered));
      m.delivered++;
      ASSERT_FALSE(log.Deliver(ch, m.delivered - 1));  // duplicate redelivery
    }
  }

  size_t undelivered = 0;
  for (const auto& [ch, m] : mirror) {
    undelivered += m.frames.size() - m.delivered;
  }
  EXPECT_EQ(log.buffered_frames(), undelivered);

  std::vector<ChannelId> ordered = channels;
  std::sort(ordered.begin(), ordered.end());
  for (int32_t node = 0; node < kNodes; node++) {
    std::vector<ResumeLog::ReplayFrame> want;
    for (const ChannelId& ch : ordered) {
      if (ch.from != node && ch.to != node) continue;
      auto it = mirror.find(ch);
      if (it == mirror.end()) continue;
      for (size_t i = it->second.delivered; i < it->second.frames.size(); i++) {
        want.push_back(ResumeLog::ReplayFrame{ch.from, it->second.frames[i]});
      }
    }
    std::vector<ResumeLog::ReplayFrame> got = log.UndeliveredFor(node);
    ASSERT_EQ(got.size(), want.size()) << "node " << node;
    for (size_t i = 0; i < got.size(); i++) {
      EXPECT_EQ(got[i].from, want[i].from) << "node " << node << " frame " << i;
      EXPECT_EQ(got[i].encoded, want[i].encoded) << "node " << node << " frame " << i;
    }
  }

  // Drain the corpus: every remaining frame delivers exactly once.
  for (auto& [ch, m] : mirror) {
    while (m.delivered < m.frames.size()) {
      ASSERT_TRUE(log.Deliver(ch, m.delivered));
      m.delivered++;
    }
    ASSERT_FALSE(log.Deliver(ch, m.frames.empty() ? 0 : m.delivered - 1));
  }
  EXPECT_EQ(log.buffered_frames(), 0u);
  EXPECT_EQ(log.buffered_bytes(), 0u);
}

void OverflowTinyBuffer() {
  ResumeLog log(/*max_buffered_bytes=*/16);
  ChannelId ch{0, 1, 0};
  log.Buffer(ch, log.NextSendSeq(ch), Bytes(32, 0xaa));
}

TEST(ResumeLogDeathTest, BufferOverflowAborts) {
  EXPECT_DEATH(OverflowTinyBuffer(), "resume buffer overflow");
}

// ---------------------------------------------------------------------------
// Checkpoints

RuntimeSnapshot MakeSnapshot() {
  RuntimeSnapshot s;
  s.config_fingerprint = 0xfeedfacecafebeefULL;
  s.next_iteration = 3;
  s.state_shares = {{mpc::BitVector{1, 0, 1}, mpc::BitVector{0, 0, 1}},
                    {mpc::BitVector{1, 1}, mpc::BitVector{}}};
  s.inmsg_shares = {{{mpc::BitVector{1}}, {mpc::BitVector{0, 1}, mpc::BitVector{1, 1}}},
                    {{}, {mpc::BitVector{0}}}};
  s.outmsg_shares = {{{mpc::BitVector{1, 0}}}};
  s.triple_cursors = {{/*tag=*/7, /*member=*/0, /*calls=*/41},
                      {/*tag=*/7, /*member=*/1, /*calls=*/41},
                      {/*tag=*/1ULL << 40, /*member=*/2, /*calls=*/0}};
  return s;
}

void ExpectSnapshotsEqual(const RuntimeSnapshot& a, const RuntimeSnapshot& b) {
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.next_iteration, b.next_iteration);
  EXPECT_EQ(a.state_shares, b.state_shares);
  EXPECT_EQ(a.inmsg_shares, b.inmsg_shares);
  EXPECT_EQ(a.outmsg_shares, b.outmsg_shares);
  ASSERT_EQ(a.triple_cursors.size(), b.triple_cursors.size());
  for (size_t i = 0; i < a.triple_cursors.size(); i++) {
    EXPECT_EQ(a.triple_cursors[i].tag, b.triple_cursors[i].tag);
    EXPECT_EQ(a.triple_cursors[i].member, b.triple_cursors[i].member);
    EXPECT_EQ(a.triple_cursors[i].calls, b.triple_cursors[i].calls);
  }
}

std::string TempPath(const std::string& stem) {
  return ::testing::TempDir() + stem + "." + std::to_string(getpid());
}

Bytes ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  Bytes out;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const Bytes& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

TEST(CheckpointTest, CodecRoundTrips) {
  RuntimeSnapshot original = MakeSnapshot();
  RuntimeSnapshot decoded = DecodeSnapshot(EncodeSnapshot(original));
  ExpectSnapshotsEqual(decoded, original);
}

TEST(CheckpointTest, SaveLoadRoundTripsThroughAFile) {
  const std::string path = TempPath("ckpt_roundtrip");
  RuntimeSnapshot original = MakeSnapshot();
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
  // Overwrite is atomic: saving again over the same path must also work.
  ASSERT_TRUE(SaveSnapshot(path, original, &error)) << error;
  RuntimeSnapshot loaded;
  ASSERT_TRUE(LoadSnapshot(path, &loaded, &error)) << error;
  ExpectSnapshotsEqual(loaded, original);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsAnError) {
  RuntimeSnapshot snapshot;
  std::string error;
  EXPECT_FALSE(LoadSnapshot(TempPath("ckpt_nonexistent"), &snapshot, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(CheckpointTest, CorruptBodyFailsTheIntegrityCheck) {
  const std::string path = TempPath("ckpt_corrupt");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, MakeSnapshot(), &error)) << error;
  Bytes file = ReadFileBytes(path);
  // Flip one bit in the middle of the body (after the 12-byte header,
  // before the 32-byte trailing digest).
  ASSERT_GT(file.size(), 12u + 32u);
  file[file.size() / 2] ^= 0x01;
  WriteFileBytes(path, file);
  RuntimeSnapshot snapshot;
  EXPECT_FALSE(LoadSnapshot(path, &snapshot, &error));
  EXPECT_NE(error.find("integrity check"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CheckpointTest, BadMagicTruncationAndVersionAreRejected) {
  const std::string path = TempPath("ckpt_reject");
  std::string error;
  RuntimeSnapshot snapshot;

  WriteFileBytes(path, Bytes{'D', 'S', 'T', 'R'});
  EXPECT_FALSE(LoadSnapshot(path, &snapshot, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;

  ASSERT_TRUE(SaveSnapshot(path, MakeSnapshot(), &error)) << error;
  Bytes good = ReadFileBytes(path);

  Bytes bad_magic = good;
  bad_magic[0] = 'X';
  WriteFileBytes(path, bad_magic);
  EXPECT_FALSE(LoadSnapshot(path, &snapshot, &error));
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  Bytes bad_version = good;
  bad_version[8] = 0xff;  // u32 version lives right after the 8-byte magic
  WriteFileBytes(path, bad_version);
  EXPECT_FALSE(LoadSnapshot(path, &snapshot, &error));
  EXPECT_NE(error.find("format version"), std::string::npos) << error;

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Engine-level checkpoint + resume over sim

engine::RunSpec CheckpointableSpec() {
  engine::RunSpec spec;
  spec.topology = engine::CorePeripheryTopology(8, 3);
  spec.model = engine::ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0};
  spec.iterations = 5;
  spec.block_size = 3;
  spec.seed = 21;
  return spec;
}

TEST(CheckpointResumeTest, SimResumeReleasesTheSameFigure) {
  const std::string path = TempPath("ckpt_resume");

  // Reference: the same run with checkpointing off.
  engine::Engine ref_engine(CheckpointableSpec());
  engine::RunReport ref = ref_engine.Run();

  // Checkpointing on: figures unchanged, snapshot left at iteration 4.
  engine::RunSpec ckpt_spec = CheckpointableSpec();
  ckpt_spec.ha_checkpoint_every = 2;
  ckpt_spec.ha_checkpoint_path = path;
  engine::Engine ckpt_engine(ckpt_spec);
  engine::RunReport ckpt = ckpt_engine.Run();
  EXPECT_EQ(ckpt.released, ref.released);
  EXPECT_EQ(ckpt.reference, ref.reference);
  EXPECT_GT(ckpt.metrics.ha_checkpoint_seconds, 0.0);

  RuntimeSnapshot snapshot;
  std::string error;
  ASSERT_TRUE(LoadSnapshot(path, &snapshot, &error)) << error;
  EXPECT_EQ(snapshot.next_iteration, 4);

  // Resume: iterations 0-3 are skipped, yet the released figure (and the
  // cleartext reference) must come out bit-identical — the fidelity
  // contract of docs/ha.md.
  engine::RunSpec resume_spec = ckpt_spec;
  resume_spec.ha_resume = true;
  engine::Engine resume_engine(resume_spec);
  engine::RunReport resumed = resume_engine.Run();
  EXPECT_EQ(resumed.released, ref.released);
  EXPECT_EQ(resumed.reference, ref.reference);
  EXPECT_EQ(resumed.metrics.resumed_from_iteration, 4);
  std::remove(path.c_str());
}

TEST(CheckpointResumeDeathTest, ForeignCheckpointIsRejected) {
  const std::string path = TempPath("ckpt_foreign");
  RuntimeSnapshot snapshot = MakeSnapshot();
  snapshot.config_fingerprint = 0xdeadULL;  // not this run's fingerprint
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, snapshot, &error)) << error;

  engine::RunSpec spec = CheckpointableSpec();
  spec.ha_checkpoint_every = 2;
  spec.ha_checkpoint_path = path;
  spec.ha_resume = true;
  EXPECT_DEATH({ engine::Engine(spec).Run(); }, "different run configuration");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// FaultyTransport

TEST(FaultyTransportTest, ResolvesThroughTheRegistry) {
  RegisterHaTransports();
  EXPECT_TRUE(net::KnownTransportBackend("faulty"));
  net::TransportSpec spec;
  spec.backend = "faulty";
  spec.faulty_inner = "sim";
  std::unique_ptr<net::Transport> t = net::MakeTransport(spec, 4);
  EXPECT_EQ(t->num_nodes(), 4);
  t->Send(0, 1, Bytes{5}, 3);
  EXPECT_EQ(t->Recv(1, 0, 3), Bytes{5});
}

TEST(FaultyTransportTest, CountsSendsIncludingBatchElements) {
  net::TransportSpec spec;
  spec.backend = "faulty";
  spec.faulty_inner = "sim";
  FaultyTransport t(3, spec);
  t.Send(0, 1, Bytes{1}, 0);
  t.SendBatch(1, 2, {Bytes{2}, Bytes{3}, Bytes{4}}, 0);
  EXPECT_EQ(t.sends(), 4u);
}

// A delay fault perturbs timing only: the released figure, the cleartext
// reference and every per-bank traffic counter must equal the same run on
// the undecorated backend.
TEST(FaultyTransportTest, DelayFaultLeavesFiguresAndTrafficIdentical) {
  engine::Engine sim_engine(CheckpointableSpec());
  engine::RunReport sim = sim_engine.Run();

  engine::RunSpec faulty_spec = CheckpointableSpec();
  faulty_spec.transport.backend = "faulty";
  faulty_spec.transport.faulty_inner = "sim";
  net::FaultSpec delay;
  delay.action = net::FaultSpec::Action::kDelay;
  delay.delay_ms = 5;
  delay.after_sends = 10;
  faulty_spec.transport.faults = {delay};
  engine::Engine faulty_engine(faulty_spec);
  engine::RunReport faulty = faulty_engine.Run();

  EXPECT_EQ(faulty.released, sim.released);
  EXPECT_EQ(faulty.reference, sim.reference);
  for (int bank = 0; bank < 8; bank++) {
    net::TrafficStats a = faulty_engine.transport().NodeStats(bank);
    net::TrafficStats b = sim_engine.transport().NodeStats(bank);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "bank " << bank;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "bank " << bank;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "bank " << bank;
    EXPECT_EQ(a.messages_received, b.messages_received) << "bank " << bank;
  }
}

// On a backend without process boundaries, a kill fault declares the bank
// dead; a Recv on its channels must abort with a diagnostic instead of
// blocking forever.
TEST(FaultyTransportDeathTest, KillOnSimWakesReceiversWithAnError) {
  EXPECT_DEATH(
      {
        net::TransportSpec spec;
        spec.backend = "faulty";
        spec.faulty_inner = "sim";
        net::FaultSpec kill;
        kill.action = net::FaultSpec::Action::kKillNode;
        kill.node = 1;
        kill.after_sends = 1;
        spec.faults = {kill};
        FaultyTransport t(3, spec);
        t.Send(0, 2, Bytes{1}, 7);  // fires the kill of bank 1
        t.Recv(2, 1, 7);            // nothing from the dead bank: must abort
      },
      "woke on a dead peer");
}

// The satellite fix this PR makes to the demux core: a receiver already
// blocked inside Recv when the peer dies must wake and abort, not hang.
TEST(FaultyTransportDeathTest, BlockedRecvWakesWhenPeerIsDeclaredDead) {
  EXPECT_DEATH(
      {
        net::SimNetwork net(3);
        std::thread receiver([&net] { net.Recv(0, 1, 9); });
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        net.DeclarePeerDead(1, "injected kill for test");
        receiver.join();
      },
      "woke on a dead peer");
}

// ---------------------------------------------------------------------------
// Scenario directives (docs/scenario-format.md, "ha" section)

TEST(HaScenarioTest, ParsesHaDirectivesAndFaultSchedule) {
  std::string error;
  auto spec = cli::ParseScenario(
      "network scale_free 8 2\n"
      "mode secure\n"
      "transport faulty sim\n"
      "ha on\n"
      "ha heartbeat_ms 100\n"
      "ha suspect_after_ms 400\n"
      "ha dead_after_ms 1200\n"
      "ha resume_timeout_ms 5000\n"
      "ha resume_buffer_mb 64\n"
      "ha respawn off\n"
      "ha checkpoint_every 2\n"
      "ha checkpoint_path /tmp/ha_scenario.ckpt\n"
      "ha fault kill 3 after_sends 500\n"
      "ha fault delay 25 after_sends 100\n"
      "seed 9\n",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->transport.backend, "faulty");
  EXPECT_EQ(spec->transport.faulty_inner, "sim");
  const net::HaSpec& ha = spec->transport.ha;
  EXPECT_TRUE(ha.enabled);
  EXPECT_EQ(ha.heartbeat_ms, 100);
  EXPECT_EQ(ha.suspect_after_ms, 400);
  EXPECT_EQ(ha.dead_after_ms, 1200);
  EXPECT_EQ(ha.resume_timeout_ms, 5000);
  EXPECT_EQ(ha.resume_buffer_bytes, size_t{64} << 20);
  EXPECT_FALSE(ha.auto_respawn);
  EXPECT_EQ(spec->ha_checkpoint_every, 2);
  EXPECT_EQ(spec->ha_checkpoint_path, "/tmp/ha_scenario.ckpt");
  ASSERT_EQ(spec->transport.faults.size(), 2u);
  EXPECT_EQ(spec->transport.faults[0].action, net::FaultSpec::Action::kKillNode);
  EXPECT_EQ(spec->transport.faults[0].node, 3);
  EXPECT_EQ(spec->transport.faults[0].after_sends, 500u);
  EXPECT_EQ(spec->transport.faults[1].action, net::FaultSpec::Action::kDelay);
  EXPECT_EQ(spec->transport.faults[1].delay_ms, 25);
}

TEST(HaScenarioTest, RejectsInvalidHaCombinations) {
  struct Case {
    const char* text;
    const char* expected_error;
  };
  const Case cases[] = {
      {"network scale_free 8 2\nha fault kill 1 after_sends 10\n",
       "'ha fault' directives require 'transport faulty"},
      {"network scale_free 8 2\ntransport faulty sim\nha fault kill 20 after_sends 10\n",
       "ha fault bank 20 out of range"},
      {"network scale_free 8 2\nha suspect_after_ms 2000\nha dead_after_ms 500\n",
       "ha dead_after_ms must be >= suspect_after_ms"},
      {"network scale_free 8 2\nha checkpoint_every 2\n",
       "'ha checkpoint_every' requires 'ha checkpoint_path"},
      {"network scale_free 8 2\ntransport faulty pigeon\n",
       "usage: transport faulty <sim|tcp>"},
      {"network scale_free 8 2\nha fault explode 1 after_sends 10\n",
       "ha fault action must be"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto spec = cli::ParseScenario(c.text, &error);
    EXPECT_FALSE(spec.has_value()) << c.text;
    EXPECT_NE(error.find(c.expected_error), std::string::npos)
        << "scenario:\n" << c.text << "error was: " << error;
  }
}

}  // namespace
}  // namespace dstress::ha
