#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/engine/engine.h"
#include "src/graph/generators.h"
#include "src/programs/components.h"
#include "src/programs/histogram.h"
#include "src/programs/influence.h"
#include "src/programs/private_sum.h"
#include "src/programs/reachability.h"

namespace dstress::programs {
namespace {

dp::NoiseCircuitSpec NoNoise() {
  dp::NoiseCircuitSpec spec;
  spec.alpha = 1e-12;  // effectively deterministic output
  spec.magnitude_bits = 8;
  spec.threshold_bits = 10;
  return spec;
}

graph::Graph Chain(int n) {
  graph::Graph g(n);
  for (int v = 0; v + 1 < n; v++) {
    g.AddEdge(v, v + 1);
  }
  return g;
}

graph::Graph Ring(int n) {
  graph::Graph g(n);
  for (int v = 0; v < n; v++) {
    g.AddEdge(v, (v + 1) % n);
  }
  return g;
}

// Symmetric union of two cycles: vertices 0..5 and 6..9.
graph::Graph TwoCycles() {
  graph::Graph g(10);
  for (int v = 0; v < 6; v++) {
    int u = (v + 1) % 6;
    g.AddEdge(v, u);
    g.AddEdge(u, v);
  }
  for (int v = 6; v < 10; v++) {
    int u = 6 + (v - 6 + 1) % 4;
    g.AddEdge(v, u);
    g.AddEdge(u, v);
  }
  return g;
}

// --- plaintext reference behaviour -----------------------------------------

TEST(ReachabilityReferenceTest, ChainCoversHopsPlusSource) {
  graph::Graph g = Chain(10);
  for (int hops = 1; hops < 9; hops++) {
    EXPECT_EQ(PlaintextReachableCount(g, {0}, hops), hops + 1) << "hops " << hops;
  }
}

TEST(ReachabilityReferenceTest, DisconnectedSourcesAddUp) {
  graph::Graph g = TwoCycles();
  EXPECT_EQ(PlaintextReachableCount(g, {0}, 100), 6);
  EXPECT_EQ(PlaintextReachableCount(g, {7}, 100), 4);
  EXPECT_EQ(PlaintextReachableCount(g, {0, 7}, 100), 10);
}

TEST(ReachabilityReferenceTest, DuplicateSourcesCountOnce) {
  graph::Graph g = Chain(4);
  EXPECT_EQ(PlaintextReachableCount(g, {0, 0, 1}, 1), 3);
}

TEST(InfluenceReferenceTest, IsolatedVertexDecays) {
  graph::Graph g(1);
  InfluenceParams params;
  params.degree_bound = 1;
  params.iterations = 3;
  params.out_shift = 3;
  params.keep_shift = 1;
  // 4 compute steps, each halving: 1024 -> 512 -> 256 -> 128 -> 64.
  auto result = PlaintextInfluence(g, {1024}, params);
  EXPECT_EQ(result[0], 64);
}

TEST(InfluenceReferenceTest, RingConservesUpToTruncation) {
  // out_shift = keep_shift = 1 on a ring: every vertex keeps half and
  // forwards half, so each full step conserves the total except for the
  // <1-per-vertex truncation of odd values.
  graph::Graph g = Ring(6);
  InfluenceParams params;
  params.degree_bound = 1;
  params.iterations = 4;
  params.out_shift = 1;
  params.keep_shift = 1;
  std::vector<uint16_t> masses = {512, 256, 128, 64, 32, 16};
  // First compute halves everything once with no inflow.
  uint32_t after_decay = 0;
  for (uint16_t mass : masses) {
    after_decay += mass / 2;
  }
  auto result = PlaintextInfluence(g, masses, params);
  uint32_t total = std::accumulate(result.begin(), result.end(), 0u);
  EXPECT_LE(total, after_decay);
  EXPECT_GE(total, after_decay - params.iterations * g.num_vertices());
}

TEST(InfluenceReferenceTest, MassNeverAppearsFromNowhere) {
  Rng rng(11);
  graph::Graph g = graph::GenerateScaleFree(20, 2, rng);
  InfluenceParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 3;
  params.out_shift = 4;  // push 1/16 per slot; with keep 1/2 mass shrinks
  params.keep_shift = 1;
  std::vector<uint16_t> masses(20, 1000);
  auto result = PlaintextInfluence(g, masses, params);
  uint64_t before = 20 * 1000;
  uint64_t after = std::accumulate(result.begin(), result.end(), uint64_t{0});
  EXPECT_LT(after, before);
}

TEST(ComponentsReferenceTest, ConvergedCountMatchesUnionFind) {
  graph::Graph g = TwoCycles();
  EXPECT_EQ(WeaklyConnectedComponents(g), 2);
  EXPECT_EQ(PlaintextComponentsCount(g, /*iterations=*/8), 2);
}

TEST(ComponentsReferenceTest, TooFewIterationsOvercounts) {
  // With zero propagation everyone is its own root; counts shrink
  // monotonically toward the true component count.
  graph::Graph g = TwoCycles();
  int prev = g.num_vertices();
  for (int iterations = 1; iterations <= 6; iterations++) {
    int count = PlaintextComponentsCount(g, iterations);
    EXPECT_LE(count, prev) << "iterations " << iterations;
    EXPECT_GE(count, 2);
    prev = count;
  }
  EXPECT_EQ(prev, 2);
}

TEST(PrivateSumReferenceTest, WrapsAtAggregateWidth) {
  EXPECT_EQ(PlaintextSum({1, 2, 3}, 16), 6);
  // 40000 + 40000 = 80000 = 0x13880; mod 2^16 = 0x3880 = 14464.
  EXPECT_EQ(PlaintextSum({40000, 40000}, 16), 14464);
  // Sign bit: 0x8000 reads as -32768.
  EXPECT_EQ(PlaintextSum({0x8000}, 16), -32768);
}

// --- update circuits cross-checked against the references -------------------

// Evaluates one update step of `program` in plaintext circuit simulation.
struct StepResult {
  std::vector<uint8_t> new_state;
  std::vector<std::vector<uint8_t>> out_msgs;
};
StepResult EvalUpdate(const core::VertexProgram& program, const std::vector<uint8_t>& state,
                      const std::vector<std::vector<uint8_t>>& in_msgs) {
  circuit::Circuit c = core::BuildUpdateCircuit(program);
  std::vector<uint8_t> input = state;
  for (const auto& msg : in_msgs) {
    input.insert(input.end(), msg.begin(), msg.end());
  }
  std::vector<uint8_t> output = c.Eval(input);
  StepResult result;
  result.new_state.assign(output.begin(), output.begin() + program.state_bits);
  for (int d = 0; d < program.degree_bound; d++) {
    auto begin = output.begin() + program.state_bits + d * program.message_bits;
    result.out_msgs.emplace_back(begin, begin + program.message_bits);
  }
  return result;
}

TEST(ProgramCircuitTest, ReachabilityUpdateOrsInputs) {
  ReachabilityParams params;
  params.degree_bound = 3;
  params.hops = 1;
  params.noise = NoNoise();
  core::VertexProgram program = BuildReachabilityProgram(params);

  std::vector<uint8_t> healthy(8, 0);
  std::vector<std::vector<uint8_t>> quiet(3, std::vector<uint8_t>(8, 0));
  StepResult r = EvalUpdate(program, healthy, quiet);
  EXPECT_EQ(r.new_state[0], 0);

  auto one_failed = quiet;
  one_failed[1][0] = 1;
  r = EvalUpdate(program, healthy, one_failed);
  EXPECT_EQ(r.new_state[0], 1);
  for (const auto& msg : r.out_msgs) {
    EXPECT_EQ(msg[0], 1);
  }
}

TEST(ProgramCircuitTest, ComponentsUpdateIgnoresNoOpZero) {
  ComponentsParams params;
  params.degree_bound = 2;
  params.iterations = 1;
  params.label_bits = 6;
  params.noise = NoNoise();
  core::VertexProgram program = BuildComponentsProgram(params);

  // Vertex id 5 (label 6) hearing [⊥, label 3]: adopts 3, not 0.
  std::vector<uint8_t> state(12, 0);
  for (int i = 0; i < 6; i++) {
    state[i] = (6 >> i) & 1;
    state[6 + i] = (6 >> i) & 1;
  }
  std::vector<std::vector<uint8_t>> msgs(2, std::vector<uint8_t>(6, 0));
  for (int i = 0; i < 6; i++) {
    msgs[1][i] = (3 >> i) & 1;
  }
  StepResult r = EvalUpdate(program, state, msgs);
  uint32_t label = 0;
  for (int i = 0; i < 6; i++) {
    label |= static_cast<uint32_t>(r.new_state[6 + i]) << i;
  }
  EXPECT_EQ(label, 3u);
  // The id half is untouched.
  uint32_t id = 0;
  for (int i = 0; i < 6; i++) {
    id |= static_cast<uint32_t>(r.new_state[i]) << i;
  }
  EXPECT_EQ(id, 6u);
}

TEST(ProgramCircuitTest, InfluenceUpdateMatchesArithmetic) {
  InfluenceParams params;
  params.degree_bound = 2;
  params.iterations = 1;
  params.out_shift = 2;
  params.keep_shift = 1;
  params.noise = NoNoise();
  core::VertexProgram program = BuildInfluenceProgram(params);

  auto state = MakeInfluenceStates({1000})[0];
  std::vector<std::vector<uint8_t>> msgs;
  msgs.push_back(MakeInfluenceStates({40})[0]);
  msgs.push_back(MakeInfluenceStates({24})[0]);
  StepResult r = EvalUpdate(program, state, msgs);
  uint32_t new_mass = 0;
  for (int i = 0; i < kInfluenceStateBits; i++) {
    new_mass |= static_cast<uint32_t>(r.new_state[i]) << i;
  }
  EXPECT_EQ(new_mass, 1000u / 2 + 40 + 24);
  uint32_t pushed = 0;
  for (int i = 0; i < kInfluenceStateBits; i++) {
    pushed |= static_cast<uint32_t>(r.out_msgs[0][i]) << i;
  }
  EXPECT_EQ(pushed, (1000u / 2 + 40 + 24) / 4);
}

// --- end-to-end runs through the engine --------------------------------------

int64_t EngineRun(const graph::Graph& g, core::VertexProgram program,
                  std::vector<mpc::BitVector> states, uint64_t seed) {
  engine::RunSpec spec;
  spec.graph = g;
  spec.model = engine::ContagionModel::kCustom;
  spec.custom_program = std::move(program);
  spec.custom_states = std::move(states);
  spec.block_size = 3;
  spec.seed = seed;
  return engine::Engine(std::move(spec)).Run().released;
}

TEST(ProgramsEndToEndTest, ReachabilityMatchesBfs) {
  Rng rng(3);
  graph::Graph g = graph::GenerateScaleFree(14, 2, rng);
  ReachabilityParams params;
  params.degree_bound = g.MaxDegree();
  params.hops = 3;
  params.noise = NoNoise();
  core::VertexProgram program = BuildReachabilityProgram(params);

  std::vector<int> sources = {0, 9};
  auto states = MakeReachabilityStates(g.num_vertices(), sources);
  int64_t released = EngineRun(g, program, states, 21);
  EXPECT_EQ(released, PlaintextReachableCount(g, sources, params.hops));
}

TEST(ProgramsEndToEndTest, InfluenceMatchesPlaintext) {
  graph::Graph g = Ring(8);
  InfluenceParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 2;
  params.out_shift = 2;
  params.keep_shift = 1;
  params.noise = NoNoise();
  core::VertexProgram program = BuildInfluenceProgram(params);

  std::vector<uint16_t> masses = {100, 200, 300, 400, 500, 600, 700, 800};
  auto states = MakeInfluenceStates(masses);
  int64_t released = EngineRun(g, program, states, 22);

  auto final_masses = PlaintextInfluence(g, masses, params);
  int64_t expected = 0;
  for (uint16_t mass : final_masses) {
    expected += mass;
  }
  EXPECT_EQ(released, expected);
}

TEST(ProgramsEndToEndTest, ComponentsCountsTwoCycles) {
  graph::Graph g = TwoCycles();
  ComponentsParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 5;  // cycle of 6 has min-label diameter 5
  params.label_bits = 5;
  params.noise = NoNoise();
  core::VertexProgram program = BuildComponentsProgram(params);

  auto states = MakeComponentsStates(g.num_vertices(), params.label_bits);
  int64_t released = EngineRun(g, program, states, 23);
  EXPECT_EQ(released, 2);
  EXPECT_EQ(released, PlaintextComponentsCount(g, params.iterations));
}

TEST(ProgramsEndToEndTest, PrivateSumMatches) {
  graph::Graph g = Chain(5);
  PrivateSumParams params;
  params.degree_bound = std::max(1, g.MaxDegree());
  params.noise = NoNoise();
  core::VertexProgram program = BuildPrivateSumProgram(params);

  std::vector<uint32_t> values = {17, 0, 65535, 3, 900};
  auto states = MakePrivateSumStates(values, params.value_bits);
  int64_t released = EngineRun(g, program, states, 24);
  EXPECT_EQ(released, PlaintextSum(values, params.aggregate_bits));
}

// --- histogram ---------------------------------------------------------------

TEST(HistogramReferenceTest, PackingAndUnpackingInvert) {
  HistogramParams params;
  params.num_buckets = 4;
  params.counter_bits = 6;
  std::vector<int> buckets = {0, 1, 1, 3, 3, 3};
  int64_t packed = PlaintextPackedHistogram(buckets, params);
  auto counts = UnpackHistogram(packed, params);
  EXPECT_EQ(counts, (std::vector<uint32_t>{1, 2, 0, 3}));
}

TEST(HistogramReferenceTest, FieldsDoNotInterfere) {
  HistogramParams params;
  params.num_buckets = 3;
  params.counter_bits = 4;  // fields of 0..15; 10 entries per bucket is safe
  std::vector<int> buckets;
  for (int i = 0; i < 10; i++) {
    buckets.push_back(0);
    buckets.push_back(2);
  }
  auto counts = UnpackHistogram(PlaintextPackedHistogram(buckets, params), params);
  EXPECT_EQ(counts, (std::vector<uint32_t>{10, 0, 10}));
}

TEST(HistogramCircuitTest, ContributionIsOneHot) {
  HistogramParams params;
  params.num_buckets = 4;
  params.counter_bits = 5;
  params.noise = NoNoise();
  core::VertexProgram program = BuildHistogramProgram(params);
  circuit::Builder b;
  circuit::Word state = b.InputWord(params.counter_bits);
  circuit::Word contribution = program.build_contribution(b, state);
  b.OutputWord(contribution);
  circuit::Circuit c = b.Build();
  for (int bucket = 0; bucket < params.num_buckets; bucket++) {
    std::vector<uint8_t> input(params.counter_bits, 0);
    for (int i = 0; i < params.counter_bits; i++) {
      input[i] = static_cast<uint8_t>((bucket >> i) & 1);
    }
    std::vector<uint8_t> out = c.Eval(input);
    for (int other = 0; other < params.num_buckets; other++) {
      EXPECT_EQ(out[other * params.counter_bits], other == bucket ? 1 : 0)
          << "bucket " << bucket << " field " << other;
    }
  }
}

TEST(ProgramsEndToEndTest, HistogramMatchesReference) {
  graph::Graph g = Chain(8);
  HistogramParams params;
  params.degree_bound = 1;
  params.num_buckets = 3;
  params.counter_bits = 5;
  params.noise = NoNoise();
  core::VertexProgram program = BuildHistogramProgram(params);

  std::vector<int> buckets = {0, 1, 2, 2, 1, 0, 1, 1};
  auto states = MakeHistogramStates(buckets, params);
  int64_t released = EngineRun(g, program, states, 25);
  EXPECT_EQ(released, PlaintextPackedHistogram(buckets, params));
  EXPECT_EQ(UnpackHistogram(released, params), (std::vector<uint32_t>{2, 4, 2}));
}

// --- property sweep: plaintext references across generator families ---------

struct SweepCase {
  int num_vertices;
  uint64_t seed;
};

class ReferenceSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ReferenceSweepTest, ReachabilityMonotoneInHops) {
  auto [n, seed] = GetParam();
  Rng rng(seed);
  graph::Graph g = graph::GenerateScaleFree(n, 2, rng);
  int prev = 0;
  for (int hops = 0; hops <= 6; hops++) {
    int count = PlaintextReachableCount(g, {0}, hops);
    EXPECT_GE(count, prev);
    EXPECT_LE(count, n);
    prev = count;
  }
}

TEST_P(ReferenceSweepTest, ComponentCountsBoundedByRoots) {
  auto [n, seed] = GetParam();
  Rng rng(seed ^ 0x5a5a);
  graph::Graph g = graph::GenerateScaleFree(n, 2, rng);
  // Symmetrize so weak components are well-defined for min propagation.
  graph::Graph sym(n);
  for (auto [u, v] : g.Edges()) {
    sym.AddEdge(u, v);
    sym.AddEdge(v, u);
  }
  int truth = WeaklyConnectedComponents(sym);
  EXPECT_GE(PlaintextComponentsCount(sym, 2), truth);
  EXPECT_EQ(PlaintextComponentsCount(sym, n), truth);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReferenceSweepTest,
                         ::testing::Values(SweepCase{8, 1}, SweepCase{16, 2}, SweepCase{24, 3},
                                           SweepCase{32, 4}, SweepCase{48, 5}));

}  // namespace
}  // namespace dstress::programs
