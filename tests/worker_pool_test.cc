#include "src/core/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <vector>

#include "src/net/sim_network.h"

namespace dstress::core {
namespace {

TEST(WorkerPoolTest, RunsEveryPairExactlyOnce) {
  WorkerPool pool(4);
  std::mutex mu;
  std::set<std::pair<size_t, size_t>> seen;
  pool.RunGrouped(13, 3, [&](size_t g, size_t s) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(seen.emplace(g, s).second) << "duplicate (" << g << "," << s << ")";
  });
  EXPECT_EQ(seen.size(), 13u * 3u);
}

TEST(WorkerPoolTest, ReusableAcrossCalls) {
  WorkerPool pool(2);
  std::atomic<int> count{0};
  for (int call = 0; call < 5; call++) {
    pool.RunGrouped(4, 2, [&](size_t, size_t) { count.fetch_add(1); });
  }
  EXPECT_EQ(count.load(), 5 * 4 * 2);
}

// The user-visible face of the admission invariant: every group's subtasks
// are all executing simultaneously at some point, even with far more groups
// than thread capacity. A strict per-group rendezvous (no subtask may leave
// until all of its group have arrived) deadlocks under any scheduler that
// starts a group without room for all of it.
TEST(WorkerPoolTest, EveryGroupGetsAllSubtasksConcurrently) {
  constexpr size_t kGroups = 12;
  constexpr size_t kSubtasks = 3;
  WorkerPool pool(4);  // room for at most one group at a time
  std::mutex mu;
  std::condition_variable cv;
  std::vector<size_t> arrived(kGroups, 0);
  pool.RunGrouped(kGroups, kSubtasks, [&](size_t g, size_t) {
    std::unique_lock<std::mutex> lock(mu);
    arrived[g]++;
    if (arrived[g] == kSubtasks) {
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return arrived[g] == kSubtasks; });
    }
  });
  for (size_t g = 0; g < kGroups; g++) {
    EXPECT_EQ(arrived[g], kSubtasks);
  }
}

// The no-deadlock invariant: every subtask of a group may block on a
// message from another subtask of the same group, with far more groups
// than threads. Whole-group admission makes this safe; per-task admission
// would park all workers on receives whose senders never get a thread.
TEST(WorkerPoolTest, IntraGroupBlockingRecvDoesNotDeadlock) {
  constexpr int kGroups = 24;
  constexpr int kSubtasks = 3;
  WorkerPool pool(4);  // far fewer threads than total tasks
  net::SimNetwork net(kSubtasks);

  std::atomic<int> done{0};
  pool.RunGrouped(kGroups, kSubtasks, [&](size_t g, size_t s) {
    // All-to-all exchange within the group: send to both peers, then block
    // receiving from both.
    auto self = static_cast<net::NodeId>(s);
    for (int p = 0; p < kSubtasks; p++) {
      if (p != static_cast<int>(s)) {
        net.Send(self, p, Bytes{static_cast<uint8_t>(s)}, /*session=*/g);
      }
    }
    for (int p = 0; p < kSubtasks; p++) {
      if (p != static_cast<int>(s)) {
        Bytes got = net.Recv(self, p, /*session=*/g);
        EXPECT_EQ(got, Bytes{static_cast<uint8_t>(p)});
      }
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), kGroups * kSubtasks);
}

// A single group larger than the pool: the pool must grow so the whole
// group holds threads concurrently (here enforced with a strict barrier —
// no subtask may leave until all have arrived).
TEST(WorkerPoolTest, GrowsWhenOneGroupExceedsThreads) {
  constexpr size_t kSubtasks = 8;
  WorkerPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);

  std::mutex mu;
  std::condition_variable cv;
  size_t arrived = 0;
  pool.RunGrouped(3, kSubtasks, [&](size_t, size_t) {
    std::unique_lock<std::mutex> lock(mu);
    arrived++;
    if (arrived % kSubtasks == 0) {
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return arrived % kSubtasks == 0; });
    }
  });
  EXPECT_EQ(arrived, 3 * kSubtasks);
  EXPECT_GE(pool.num_threads(), static_cast<int>(kSubtasks));
}

TEST(WorkerPoolTest, GroupsAdmittedInOrder) {
  // With whole-group admission, a group's first task cannot start before
  // every earlier group was admitted; record the admission order of group
  // starts and check it is non-decreasing in batches of the window size.
  WorkerPool pool(2);
  std::mutex mu;
  std::vector<size_t> first_seen;
  std::set<size_t> started;
  pool.RunGrouped(10, 1, [&](size_t g, size_t) {
    std::lock_guard<std::mutex> lock(mu);
    if (started.insert(g).second) {
      first_seen.push_back(g);
    }
  });
  ASSERT_EQ(first_seen.size(), 10u);
  // Group g is admitted only after groups 0..g-1; with a 2-thread window a
  // group can start at most 1 position early.
  for (size_t i = 0; i < first_seen.size(); i++) {
    EXPECT_LE(first_seen[i], i + 2);
  }
}

TEST(WorkerPoolTest, ZeroWorkIsANoOp) {
  WorkerPool pool(2);
  pool.RunGrouped(0, 4, [&](size_t, size_t) { FAIL(); });
  pool.RunGrouped(4, 0, [&](size_t, size_t) { FAIL(); });
}

}  // namespace
}  // namespace dstress::core
