#include <gtest/gtest.h>

#include <cmath>

#include "src/dp/edge_privacy.h"
#include "src/dp/noise_circuit.h"
#include "src/dp/release.h"
#include "src/dp/samplers.h"
#include "src/mpc/sharing.h"

namespace dstress::dp {
namespace {

TEST(SamplersTest, UniformUnitRange) {
  auto prg = crypto::ChaCha20Prg::FromSeed(1);
  double sum = 0;
  for (int i = 0; i < 20000; i++) {
    double u = UniformUnit(prg);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(SamplersTest, LaplaceMoments) {
  auto prg = crypto::ChaCha20Prg::FromSeed(2);
  constexpr double kScale = 5.0;
  constexpr int kTrials = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kTrials; i++) {
    double v = LaplaceSample(prg, kScale);
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.2);
  // Var(Laplace(b)) = 2 b^2 = 50.
  EXPECT_NEAR(sum_sq / kTrials, 2 * kScale * kScale, 3.0);
}

TEST(SamplersTest, GeometricDistribution) {
  auto prg = crypto::ChaCha20Prg::FromSeed(3);
  constexpr double kP = 0.5;
  constexpr int kTrials = 50000;
  std::vector<int> counts(8, 0);
  for (int i = 0; i < kTrials; i++) {
    int64_t v = GeometricSample(prg, kP);
    ASSERT_GE(v, 0);
    if (v < 8) {
      counts[v]++;
    }
  }
  // P(Y=k) = 0.5^(k+1).
  for (int k = 0; k < 5; k++) {
    double expected = std::pow(0.5, k + 1);
    EXPECT_NEAR(static_cast<double>(counts[k]) / kTrials, expected, 0.01) << k;
  }
}

TEST(SamplersTest, TwoSidedGeometricProperties) {
  auto prg = crypto::ChaCha20Prg::FromSeed(4);
  constexpr double kAlpha = 0.8;
  constexpr int kTrials = 50000;
  double sum = 0;
  int zero = 0, plus_one = 0, minus_one = 0;
  for (int i = 0; i < kTrials; i++) {
    int64_t v = TwoSidedGeometricSample(prg, kAlpha);
    sum += static_cast<double>(v);
    zero += v == 0;
    plus_one += v == 1;
    minus_one += v == -1;
  }
  double p0 = (1 - kAlpha) / (1 + kAlpha);
  EXPECT_NEAR(sum / kTrials, 0.0, 0.1);
  EXPECT_NEAR(static_cast<double>(zero) / kTrials, p0, 0.01);
  EXPECT_NEAR(static_cast<double>(plus_one) / kTrials, p0 * kAlpha, 0.01);
  EXPECT_NEAR(static_cast<double>(minus_one) / kTrials, p0 * kAlpha, 0.01);
}

TEST(SamplersTest, EvenMaskIsAlwaysEven) {
  auto prg = crypto::ChaCha20Prg::FromSeed(5);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(EvenGeometricMask(prg, 0.9) % 2, 0);
  }
}

TEST(SamplersTest, GeometricMechanismCentersOnValue) {
  auto prg = crypto::ChaCha20Prg::FromSeed(6);
  constexpr int64_t kValue = 1000;
  constexpr int kTrials = 20000;
  double sum = 0;
  for (int i = 0; i < kTrials; i++) {
    sum += static_cast<double>(GeometricMechanism(prg, kValue, /*sensitivity=*/2.0,
                                                  /*epsilon=*/0.5));
  }
  EXPECT_NEAR(sum / kTrials, static_cast<double>(kValue), 1.0);
}

// --- Appendix B edge-privacy accounting --------------------------------------

TEST(EdgePrivacyTest, SensitivityIsBlockSize) {
  EXPECT_EQ(TransferSensitivity(19), 20);
  EXPECT_EQ(TransferSensitivity(7), 8);
}

TEST(EdgePrivacyTest, TotalTransfersConcreteExample) {
  // Appendix B: Y=10, R=3, I=11, N=1750, D=100, L=16, k=19 -> ~370 billion.
  TransferAccountingParams p;
  p.years = 10;
  p.runs_per_year = 3;
  p.iterations = 11;
  p.num_nodes = 1750;
  p.degree_bound = 100;
  p.message_bits = 16;
  p.collusion_bound_k = 19;
  double nq = TotalTransfers(p);
  EXPECT_NEAR(nq, 369.6e9, 1e9);
}

TEST(EdgePrivacyTest, FailureProbabilityMonotoneInAlpha) {
  constexpr int64_t kEntries = 1000000;
  double prev = 0;
  for (double alpha : {0.9, 0.99, 0.999999, 0.999999999}) {
    double p = FailureProbability(alpha, kEntries);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(EdgePrivacyTest, SmallAlphaNeverFails) {
  EXPECT_NEAR(FailureProbability(0.5, 1000000), 0.0, 1e-12);
}

TEST(EdgePrivacyTest, MaxAlphaSatisfiesBudget) {
  constexpr int64_t kEntries = 1 << 20;
  constexpr double kTransfers = 1e9;
  double alpha = MaxAlphaForFailureBudget(kEntries, kTransfers);
  EXPECT_GT(alpha, 0.0);
  EXPECT_LT(alpha, 1.0);
  EXPECT_LE(FailureProbability(alpha, kEntries), 1.0 / kTransfers * 1.01);
  // Slightly larger alpha must violate the budget (tightness).
  double bigger = alpha + (1 - alpha) * 0.5;
  EXPECT_GT(FailureProbability(bigger, kEntries), 1.0 / kTransfers);
}

TEST(EdgePrivacyTest, ConcreteBudgetMatchesAppendixB) {
  // Appendix B's concrete instantiation: k+1=20, L=16, 230M-entry table,
  // ~370B transfers -> eps/transfer ~ 2.34e-7, per-iteration ~ 0.0014,
  // yearly (33 iterations) ~ 0.047.
  TransferAccountingParams p;
  p.collusion_bound_k = 19;
  p.message_bits = 16;
  p.iterations = 11;
  p.runs_per_year = 3;
  p.num_nodes = 1750;
  p.degree_bound = 100;
  p.years = 10;
  p.lookup_entries = 230'000'000;
  TransferBudgetReport report = EvaluateTransferBudget(p);
  EXPECT_NEAR(report.epsilon_per_transfer, 2.34e-7, 0.2e-7);
  EXPECT_NEAR(report.per_iteration_epsilon, 0.0014, 0.0002);
  EXPECT_NEAR(report.yearly_epsilon, 0.047, 0.005);
}

TEST(PrivacyAccountantTest, ChargesAndRefuses) {
  PrivacyAccountant accountant(std::log(2.0));
  EXPECT_TRUE(accountant.Charge(0.23));
  EXPECT_TRUE(accountant.Charge(0.23));
  EXPECT_TRUE(accountant.Charge(0.23));
  // ln 2 ~ 0.693: a fourth query of 0.23 busts the budget (0.92 > 0.693).
  EXPECT_FALSE(accountant.Charge(0.23));
  EXPECT_NEAR(accountant.spent(), 0.69, 0.01);
  accountant.Replenish();
  EXPECT_TRUE(accountant.Charge(0.23));
}

// --- in-circuit noise sampler -------------------------------------------------

TEST(NoiseCircuitTest, MatchesReferenceOnRandomInputs) {
  NoiseCircuitSpec spec;
  spec.alpha = 0.7;
  spec.magnitude_bits = 8;
  spec.threshold_bits = 10;
  circuit::Builder b;
  circuit::Word noise = BuildGeometricNoise(b, spec, 16);
  b.OutputWord(noise);
  circuit::Circuit c = b.Build();
  ASSERT_EQ(c.num_inputs(), NoiseInputBits(spec));

  auto prg = crypto::ChaCha20Prg::FromSeed(7);
  for (int trial = 0; trial < 200; trial++) {
    std::vector<uint8_t> bits(c.num_inputs());
    for (auto& bit : bits) {
      bit = prg.NextBit() ? 1 : 0;
    }
    auto out = c.Eval(bits);
    int64_t circuit_value = mpc::BitsToSignedWord(out, 0, 16);
    EXPECT_EQ(circuit_value, DigitwiseGeometricRef(spec, bits)) << "trial " << trial;
  }
}

TEST(NoiseCircuitTest, DistributionApproximatesTwoSidedGeometric) {
  NoiseCircuitSpec spec;
  spec.alpha = 0.5;
  spec.magnitude_bits = 10;
  spec.threshold_bits = 16;
  circuit::Builder b;
  b.OutputWord(BuildGeometricNoise(b, spec, 16));
  circuit::Circuit c = b.Build();

  auto prg = crypto::ChaCha20Prg::FromSeed(8);
  constexpr int kTrials = 5000;
  double sum = 0;
  int zeros = 0;
  for (int trial = 0; trial < kTrials; trial++) {
    std::vector<uint8_t> bits(c.num_inputs());
    for (auto& bit : bits) {
      bit = prg.NextBit() ? 1 : 0;
    }
    int64_t v = mpc::BitsToSignedWord(c.Eval(bits), 0, 16);
    sum += static_cast<double>(v);
    zeros += v == 0;
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.1);
  // P(0) = (1-a)/(1+a) = 1/3 for alpha = 0.5.
  EXPECT_NEAR(static_cast<double>(zeros) / kTrials, 1.0 / 3, 0.03);
}

TEST(NoiseCircuitTest, InputCountFormula) {
  NoiseCircuitSpec spec;
  spec.magnitude_bits = 16;
  spec.threshold_bits = 16;
  EXPECT_EQ(NoiseInputBits(spec), 2u * 16 * 16);
}

TEST(NoiseCircuitTest, TinyAlphaIsAlmostAlwaysZero) {
  NoiseCircuitSpec spec;
  spec.alpha = 1e-9;
  spec.magnitude_bits = 8;
  spec.threshold_bits = 16;
  circuit::Builder b;
  b.OutputWord(BuildGeometricNoise(b, spec, 12));
  circuit::Circuit c = b.Build();
  auto prg = crypto::ChaCha20Prg::FromSeed(9);
  for (int trial = 0; trial < 100; trial++) {
    std::vector<uint8_t> bits(c.num_inputs());
    for (auto& bit : bits) {
      bit = prg.NextBit() ? 1 : 0;
    }
    EXPECT_EQ(mpc::BitsToSignedWord(c.Eval(bits), 0, 12), 0);
  }
}

TEST(ReleaseManagerTest, ChargesBudgetAndRecordsHistory) {
  ReleaseManager manager(/*yearly_budget=*/std::log(2.0), /*seed=*/5);
  auto first = manager.Release("stress-test-q1", 500, /*sensitivity=*/20, /*epsilon=*/0.23);
  ASSERT_TRUE(first.has_value());
  EXPECT_NEAR(manager.spent_budget(), 0.23, 1e-12);
  ASSERT_EQ(manager.history().size(), 1u);
  EXPECT_EQ(manager.history()[0].label, "stress-test-q1");
  EXPECT_EQ(manager.history()[0].released_value, *first);
}

TEST(ReleaseManagerTest, RefusesWhenBudgetExhausted) {
  ReleaseManager manager(std::log(2.0), 6);
  // ln 2 = 0.693 supports exactly 3 releases at eps = 0.23.
  EXPECT_TRUE(manager.Release("q1", 100, 20, 0.23).has_value());
  EXPECT_TRUE(manager.Release("q2", 100, 20, 0.23).has_value());
  EXPECT_TRUE(manager.Release("q3", 100, 20, 0.23).has_value());
  EXPECT_FALSE(manager.Release("q4", 100, 20, 0.23).has_value());
  EXPECT_EQ(manager.history().size(), 3u) << "refused queries must not be recorded";
  // Refusal charges nothing.
  EXPECT_NEAR(manager.spent_budget(), 0.69, 0.01);
}

TEST(ReleaseManagerTest, ReplenishStartsANewYear) {
  ReleaseManager manager(0.3, 7);
  EXPECT_TRUE(manager.Release("y1", 10, 1, 0.3).has_value());
  EXPECT_FALSE(manager.Release("y1-extra", 10, 1, 0.3).has_value());
  manager.Replenish();
  EXPECT_TRUE(manager.Release("y2", 10, 1, 0.3).has_value());
  EXPECT_EQ(manager.history().size(), 2u);
}

TEST(ReleaseManagerTest, ChargeEnsembleComposesAndRecordsPerScenario) {
  ReleaseManager manager(2.0, 9);
  std::string error;
  ASSERT_TRUE(manager.ChargeEnsemble("sweep", 4, 0.4, &error)) << error;
  EXPECT_NEAR(manager.spent_budget(), 1.6, 1e-9);
  ASSERT_EQ(manager.history().size(), 4u);
  EXPECT_NE(manager.history()[0].label.find("sweep"), std::string::npos);
  EXPECT_NE(manager.history()[3].label.find("3/4"), std::string::npos);
}

TEST(ReleaseManagerTest, ChargeEnsembleRefusalIsAtomicAndNamesOverrun) {
  ReleaseManager manager(1.0, 9);
  std::string error;
  EXPECT_FALSE(manager.ChargeEnsemble("big", 3, 0.5, &error));
  // Nothing charged, nothing recorded.
  EXPECT_DOUBLE_EQ(manager.spent_budget(), 0.0);
  EXPECT_TRUE(manager.history().empty());
  // The error names the composed epsilon, the remaining budget, and the
  // overrun.
  EXPECT_NE(error.find("ensemble 'big'"), std::string::npos) << error;
  EXPECT_NE(error.find("composed epsilon 1.5"), std::string::npos) << error;
  EXPECT_NE(error.find("3 scenarios x 0.5"), std::string::npos) << error;
  EXPECT_NE(error.find("exceeds remaining budget 1"), std::string::npos) << error;
  EXPECT_NE(error.find("by 0.5"), std::string::npos) << error;
  EXPECT_NE(error.find("refusing release"), std::string::npos) << error;
  // The budget is still usable after the refusal.
  EXPECT_TRUE(manager.ChargeEnsemble("fits", 2, 0.5, &error)) << error;
  EXPECT_DOUBLE_EQ(manager.spent_budget(), 1.0);
}

TEST(ReleaseManagerTest, NoiseScalesWithSensitivityOverEpsilon) {
  // Empirical spread of releases grows with sensitivity/epsilon.
  auto spread = [](double sensitivity, double epsilon) {
    ReleaseManager manager(/*yearly_budget=*/1e9, /*seed=*/8);
    double sum_abs = 0;
    constexpr int kTrials = 3000;
    for (int t = 0; t < kTrials; t++) {
      auto released = manager.Release("q", 0, sensitivity, epsilon);
      sum_abs += std::abs(static_cast<double>(*released));
    }
    return sum_abs / kTrials;
  };
  double tight = spread(1, 1.0);
  double wide = spread(20, 0.23);
  EXPECT_GT(wide, 10 * tight);
}

}  // namespace
}  // namespace dstress::dp
