// Parameterized end-to-end sweep of the full stack (setup -> sharing ->
// GMW updates -> encrypted transfers -> tree/flat aggregation -> in-MPC
// noising disabled) across block sizes and topologies, using the
// private-sum and reachability programs whose outputs are exactly
// predictable. Every cell exercises a distinct (k, topology) combination
// of the protocol.
#include <gtest/gtest.h>

#include "src/core/runtime.h"
#include "src/graph/generators.h"
#include "src/programs/private_sum.h"
#include "src/programs/reachability.h"

namespace dstress::core {
namespace {

enum class Topo { kRing, kStar, kScaleFree };

struct SweepCase {
  int block_size;
  Topo topo;
  int num_vertices;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* names[] = {"Ring", "Star", "ScaleFree"};
  return std::string(names[static_cast<int>(info.param.topo)]) + "N" +
         std::to_string(info.param.num_vertices) + "B" + std::to_string(info.param.block_size);
}

graph::Graph MakeTopo(Topo topo, int n) {
  switch (topo) {
    case Topo::kRing: {
      graph::Graph g(n);
      for (int v = 0; v < n; v++) {
        g.AddEdge(v, (v + 1) % n);
      }
      return g;
    }
    case Topo::kStar: {
      graph::Graph g(n);
      for (int v = 1; v < n; v++) {
        g.AddEdge(0, v);  // hub broadcasts; max out-degree n-1
      }
      return g;
    }
    case Topo::kScaleFree: {
      Rng rng(static_cast<uint64_t>(n) * 31);
      return graph::GenerateScaleFree(n, 2, rng);
    }
  }
  DSTRESS_CHECK(false);
}

class RuntimeSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RuntimeSweepTest, PrivateSumExact) {
  auto [block_size, topo, n] = GetParam();
  graph::Graph g = MakeTopo(topo, n);

  programs::PrivateSumParams params;
  params.degree_bound = std::max(1, g.MaxDegree());
  params.noise.alpha = 1e-12;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 10;
  core::VertexProgram program = programs::BuildPrivateSumProgram(params);

  std::vector<uint32_t> values;
  for (int v = 0; v < n; v++) {
    values.push_back(static_cast<uint32_t>(100 + 7 * v));
  }
  core::RuntimeConfig config;
  config.block_size = block_size;
  config.seed = static_cast<uint64_t>(block_size) * 1000 + n;
  core::Runtime runtime(config, g, program);
  RunMetrics metrics;
  int64_t released = runtime.Run(programs::MakePrivateSumStates(values, params.value_bits),
                                 &metrics);
  EXPECT_EQ(released, programs::PlaintextSum(values, params.aggregate_bits));
  EXPECT_GT(metrics.total_bytes, 0u);
}

TEST_P(RuntimeSweepTest, ReachabilityExact) {
  auto [block_size, topo, n] = GetParam();
  graph::Graph g = MakeTopo(topo, n);

  programs::ReachabilityParams params;
  params.degree_bound = std::max(1, g.MaxDegree());
  params.hops = 2;
  params.noise.alpha = 1e-12;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 10;
  core::VertexProgram program = programs::BuildReachabilityProgram(params);

  std::vector<int> sources = {0};
  auto states = programs::MakeReachabilityStates(n, sources);
  core::RuntimeConfig config;
  config.block_size = block_size;
  config.seed = static_cast<uint64_t>(block_size) * 2000 + n;
  core::Runtime runtime(config, g, program);
  int64_t released = runtime.Run(states, nullptr);
  EXPECT_EQ(released, programs::PlaintextReachableCount(g, sources, params.hops));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RuntimeSweepTest,
                         ::testing::Values(SweepCase{2, Topo::kRing, 6},
                                           SweepCase{3, Topo::kRing, 8},
                                           SweepCase{4, Topo::kRing, 6},
                                           SweepCase{3, Topo::kStar, 7},
                                           SweepCase{4, Topo::kStar, 9},
                                           SweepCase{3, Topo::kScaleFree, 10},
                                           SweepCase{4, Topo::kScaleFree, 12}),
                         CaseName);

}  // namespace
}  // namespace dstress::core
