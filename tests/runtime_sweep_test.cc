// Parameterized end-to-end sweep of the full stack through the engine API
// (setup -> sharing -> GMW updates -> encrypted transfers -> tree/flat
// aggregation -> in-MPC noising disabled) across block sizes and
// topologies, using the private-sum and reachability programs whose outputs
// are exactly predictable. Every cell exercises a distinct (k, topology)
// combination of the protocol — and runs once per execution mode, so the
// cleartext fast path is held to the same exact-output bar as the secure
// stack.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/graph/generators.h"
#include "src/programs/private_sum.h"
#include "src/programs/reachability.h"

namespace dstress::engine {
namespace {

enum class Topo { kRing, kStar, kScaleFree };

struct SweepCase {
  int block_size;
  Topo topo;
  int num_vertices;
  ExecutionMode mode;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const char* names[] = {"Ring", "Star", "ScaleFree"};
  return std::string(names[static_cast<int>(info.param.topo)]) + "N" +
         std::to_string(info.param.num_vertices) + "B" + std::to_string(info.param.block_size) +
         (info.param.mode == ExecutionMode::kSecure ? "Secure" : "Cleartext");
}

graph::Graph MakeTopo(Topo topo, int n) {
  switch (topo) {
    case Topo::kRing: {
      graph::Graph g(n);
      for (int v = 0; v < n; v++) {
        g.AddEdge(v, (v + 1) % n);
      }
      return g;
    }
    case Topo::kStar: {
      graph::Graph g(n);
      for (int v = 1; v < n; v++) {
        g.AddEdge(0, v);  // hub broadcasts; max out-degree n-1
      }
      return g;
    }
    case Topo::kScaleFree: {
      Rng rng(static_cast<uint64_t>(n) * 31);
      return graph::GenerateScaleFree(n, 2, rng);
    }
  }
  DSTRESS_CHECK(false);
}

class RuntimeSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RuntimeSweepTest, PrivateSumExact) {
  auto [block_size, topo, n, mode] = GetParam();
  graph::Graph g = MakeTopo(topo, n);

  programs::PrivateSumParams params;
  params.degree_bound = std::max(1, g.MaxDegree());
  params.noise.alpha = 1e-12;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 10;

  std::vector<uint32_t> values;
  for (int v = 0; v < n; v++) {
    values.push_back(static_cast<uint32_t>(100 + 7 * v));
  }
  RunSpec spec;
  spec.graph = g;
  spec.model = ContagionModel::kCustom;
  spec.custom_program = programs::BuildPrivateSumProgram(params);
  spec.custom_states = programs::MakePrivateSumStates(values, params.value_bits);
  spec.block_size = block_size;
  spec.seed = static_cast<uint64_t>(block_size) * 1000 + n;
  spec.mode = mode;
  RunReport report = Engine(spec).Run();
  EXPECT_EQ(report.released, programs::PlaintextSum(values, params.aggregate_bits));
  EXPECT_GT(report.metrics.total_bytes, 0u);
}

TEST_P(RuntimeSweepTest, ReachabilityExact) {
  auto [block_size, topo, n, mode] = GetParam();
  graph::Graph g = MakeTopo(topo, n);

  programs::ReachabilityParams params;
  params.degree_bound = std::max(1, g.MaxDegree());
  params.hops = 2;
  params.noise.alpha = 1e-12;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 10;

  std::vector<int> sources = {0};
  RunSpec spec;
  spec.graph = g;
  spec.model = ContagionModel::kCustom;
  spec.custom_program = programs::BuildReachabilityProgram(params);
  spec.custom_states = programs::MakeReachabilityStates(n, sources);
  spec.block_size = block_size;
  spec.seed = static_cast<uint64_t>(block_size) * 2000 + n;
  spec.mode = mode;
  RunReport report = Engine(spec).Run();
  EXPECT_EQ(report.released, programs::PlaintextReachableCount(g, sources, params.hops));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuntimeSweepTest,
    ::testing::Values(SweepCase{2, Topo::kRing, 6, ExecutionMode::kSecure},
                      SweepCase{3, Topo::kRing, 8, ExecutionMode::kSecure},
                      SweepCase{4, Topo::kRing, 6, ExecutionMode::kSecure},
                      SweepCase{3, Topo::kStar, 7, ExecutionMode::kSecure},
                      SweepCase{4, Topo::kStar, 9, ExecutionMode::kSecure},
                      SweepCase{3, Topo::kScaleFree, 10, ExecutionMode::kSecure},
                      SweepCase{4, Topo::kScaleFree, 12, ExecutionMode::kSecure},
                      SweepCase{2, Topo::kRing, 6, ExecutionMode::kCleartextFast},
                      SweepCase{3, Topo::kStar, 7, ExecutionMode::kCleartextFast},
                      SweepCase{4, Topo::kScaleFree, 12, ExecutionMode::kCleartextFast},
                      // Far beyond secure-mode test scale: the fast path
                      // covers a three-digit vertex count in milliseconds.
                      SweepCase{4, Topo::kScaleFree, 400, ExecutionMode::kCleartextFast}),
    CaseName);

}  // namespace
}  // namespace dstress::engine
