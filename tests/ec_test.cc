#include "src/crypto/ec.h"

#include <gtest/gtest.h>

#include "src/crypto/chacha20.h"

namespace dstress::crypto {
namespace {

EcPoint RandomPoint(ChaCha20Prg& prg) { return MulBase(prg.NextScalar(CurveOrder())); }

TEST(EcTest, GeneratorIsOnCurve) {
  Fp x = Fp::FromUint64(0), y = Fp::FromUint64(0);
  EcPoint::Generator().ToAffine(&x, &y);
  EXPECT_EQ(y.Square(), x.Square() * x + Fp::FromUint64(7));
}

TEST(EcTest, KnownDoubleOfGenerator) {
  // 2*G for secp256k1 (public test vector).
  Fp x = Fp::FromUint64(0), y = Fp::FromUint64(0);
  EcPoint::Generator().Double().ToAffine(&x, &y);
  EXPECT_EQ(x.raw().ToHex(),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(y.raw().ToHex(),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
}

TEST(EcTest, GeneratorHasGroupOrder) {
  EXPECT_TRUE(EcPoint::Generator().Mul(CurveOrder()).IsInfinity());
  U256 n_minus_1;
  SubWithBorrow(CurveOrder(), U256::One(), &n_minus_1);
  EXPECT_EQ(EcPoint::Generator().Mul(n_minus_1), EcPoint::Generator().Neg());
}

TEST(EcTest, InfinityIsIdentity) {
  auto prg = ChaCha20Prg::FromSeed(1);
  EcPoint p = RandomPoint(prg);
  EXPECT_EQ(p.Add(EcPoint::Infinity()), p);
  EXPECT_EQ(EcPoint::Infinity().Add(p), p);
  EXPECT_TRUE(EcPoint::Infinity().Double().IsInfinity());
}

TEST(EcTest, AdditionCommutesAndAssociates) {
  auto prg = ChaCha20Prg::FromSeed(2);
  for (int i = 0; i < 20; i++) {
    EcPoint a = RandomPoint(prg);
    EcPoint b = RandomPoint(prg);
    EcPoint c = RandomPoint(prg);
    EXPECT_EQ(a.Add(b), b.Add(a));
    EXPECT_EQ(a.Add(b).Add(c), a.Add(b.Add(c)));
  }
}

TEST(EcTest, NegCancels) {
  auto prg = ChaCha20Prg::FromSeed(3);
  for (int i = 0; i < 20; i++) {
    EcPoint p = RandomPoint(prg);
    EXPECT_TRUE(p.Add(p.Neg()).IsInfinity());
  }
}

TEST(EcTest, DoubleMatchesSelfAdd) {
  auto prg = ChaCha20Prg::FromSeed(4);
  for (int i = 0; i < 20; i++) {
    EcPoint p = RandomPoint(prg);
    EXPECT_EQ(p.Add(p), p.Double());
  }
}

TEST(EcTest, MulBaseMatchesGenericMul) {
  auto prg = ChaCha20Prg::FromSeed(5);
  for (int i = 0; i < 50; i++) {
    U256 k = prg.NextScalar(CurveOrder());
    EXPECT_EQ(MulBase(k), EcPoint::Generator().Mul(k));
  }
}

TEST(EcTest, MulIsHomomorphicInScalar) {
  auto prg = ChaCha20Prg::FromSeed(6);
  for (int i = 0; i < 20; i++) {
    U256 a = prg.NextScalar(CurveOrder());
    U256 b = prg.NextScalar(CurveOrder());
    U256 sum = ModAdd(a, b, CurveOrder());
    EXPECT_EQ(MulBase(a).Add(MulBase(b)), MulBase(sum));
  }
}

TEST(EcTest, MulAssociatesWithScalarProduct) {
  auto prg = ChaCha20Prg::FromSeed(7);
  for (int i = 0; i < 10; i++) {
    EcPoint p = RandomPoint(prg);
    U256 a = prg.NextScalar(CurveOrder());
    U256 b = prg.NextScalar(CurveOrder());
    EXPECT_EQ(p.Mul(a).Mul(b), p.Mul(ModMul(a, b, CurveOrder())));
  }
}

TEST(EcTest, MulByZeroAndOne) {
  auto prg = ChaCha20Prg::FromSeed(8);
  EcPoint p = RandomPoint(prg);
  EXPECT_TRUE(p.Mul(U256::Zero()).IsInfinity());
  EXPECT_EQ(p.Mul(U256::One()), p);
}

class EcSmallScalarTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EcSmallScalarTest, MulMatchesRepeatedAddition) {
  uint64_t k = GetParam();
  auto prg = ChaCha20Prg::FromSeed(900 + k);
  EcPoint p = RandomPoint(prg);
  EcPoint expected = EcPoint::Infinity();
  for (uint64_t i = 0; i < k; i++) {
    expected = expected.Add(p);
  }
  EXPECT_EQ(p.Mul(U256(k)), expected);
}

INSTANTIATE_TEST_SUITE_P(SmallScalars, EcSmallScalarTest,
                         ::testing::Values(0, 1, 2, 3, 5, 15, 16, 17, 31, 32, 33, 100, 255));

TEST(EcTest, CompressRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(9);
  for (int i = 0; i < 30; i++) {
    EcPoint p = RandomPoint(prg);
    auto compressed = p.Compress();
    auto back = EcPoint::Decompress(compressed.data());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
}

TEST(EcTest, CompressInfinity) {
  auto compressed = EcPoint::Infinity().Compress();
  for (uint8_t byte : compressed) {
    EXPECT_EQ(byte, 0);
  }
  auto back = EcPoint::Decompress(compressed.data());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->IsInfinity());
}

TEST(EcTest, DecompressRejectsBadPrefix) {
  auto prg = ChaCha20Prg::FromSeed(10);
  auto compressed = RandomPoint(prg).Compress();
  compressed[0] = 0x05;
  EXPECT_FALSE(EcPoint::Decompress(compressed.data()).has_value());
}

TEST(EcTest, DecompressRejectsNonCurveX) {
  // x = 3 has no square root for y^2 = x^3 + 7? Check: 27+7=34; whether 34
  // is a residue depends on p — search for a rejecting x instead.
  int rejected = 0;
  for (uint64_t x = 1; x < 40; x++) {
    std::array<uint8_t, 33> buf{};
    buf[0] = 0x02;
    U256(x).ToBytesBe(buf.data() + 1);
    if (!EcPoint::Decompress(buf.data()).has_value()) {
      rejected++;
    }
  }
  EXPECT_GT(rejected, 5);  // about half of all x should fail
}

TEST(EcTest, CompressBatchMatchesIndividual) {
  auto prg = ChaCha20Prg::FromSeed(11);
  std::vector<EcPoint> points;
  for (int i = 0; i < 17; i++) {
    points.push_back(RandomPoint(prg));
  }
  points.push_back(EcPoint::Infinity());
  points.push_back(RandomPoint(prg));
  std::vector<uint8_t> batch(points.size() * EcPoint::kCompressedSize);
  EcPoint::CompressBatch(points.data(), points.size(), batch.data());
  for (size_t i = 0; i < points.size(); i++) {
    auto single = points[i].Compress();
    EXPECT_EQ(0, memcmp(single.data(), batch.data() + i * EcPoint::kCompressedSize,
                        EcPoint::kCompressedSize))
        << "index " << i;
  }
}

TEST(EcTest, EqualityAcrossRepresentations) {
  // The same point reached via different operation orders has different
  // Jacobian coordinates but must compare equal.
  auto prg = ChaCha20Prg::FromSeed(12);
  EcPoint p = RandomPoint(prg);
  EcPoint via_double = p.Double().Add(p);  // 3P
  EcPoint via_add = p.Add(p).Add(p);       // 3P
  EcPoint via_mul = p.Mul(U256(3));
  EXPECT_EQ(via_double, via_add);
  EXPECT_EQ(via_double, via_mul);
}

}  // namespace
}  // namespace dstress::crypto
