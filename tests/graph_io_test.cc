#include "src/graph/io.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace dstress::graph {
namespace {

TEST(EdgeListTest, RoundTripsGeneratedGraphs) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Graph g = GenerateScaleFree(20, 2, rng);
    std::string text = WriteEdgeList(g);
    std::string error;
    auto parsed = ParseEdgeList(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->num_vertices(), g.num_vertices());
    EXPECT_EQ(parsed->Edges(), g.Edges());
  }
}

TEST(EdgeListTest, CommentsAndBlanksIgnored) {
  std::string error;
  auto g = ParseEdgeList("# topology\n\ngraph 3\n0 1   # first\n1 2\n", &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_TRUE(g->HasEdge(0, 1));
  EXPECT_TRUE(g->HasEdge(1, 2));
}

TEST(EdgeListTest, EmptyGraphAllowed) {
  std::string error;
  auto g = ParseEdgeList("graph 5\n", &error);
  ASSERT_TRUE(g.has_value()) << error;
  EXPECT_EQ(g->num_vertices(), 5);
  EXPECT_EQ(g->num_edges(), 0);
}

TEST(EdgeListTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* fragment;
  };
  const Case cases[] = {
      {"", "missing 'graph"},
      {"digraph 3\n", "line 1"},
      {"graph 0\n", "line 1"},
      {"graph 3 extra\n", "trailing tokens"},
      {"graph 3\n0\n", "line 2"},
      {"graph 3\n0 1 2\n", "expected '<u> <v>'"},
      {"graph 3\n0 3\n", "out of range"},
      {"graph 3\n-1 2\n", "out of range"},
      {"graph 3\n1 1\n", "self-loops"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto g = ParseEdgeList(c.text, &error);
    EXPECT_FALSE(g.has_value()) << c.text;
    EXPECT_NE(error.find(c.fragment), std::string::npos)
        << "input <" << c.text << "> error <" << error << ">";
  }
}

TEST(DotTest, ContainsAllNodesAndEdges) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(2, 0);
  std::string dot = WriteDot(g, /*core_size=*/1);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 [style=filled"), std::string::npos);
  EXPECT_EQ(dot.find("n1 [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n0;"), std::string::npos);
}

}  // namespace
}  // namespace dstress::graph
