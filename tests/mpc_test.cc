#include <gtest/gtest.h>

#include <thread>

#include "src/circuit/builder.h"
#include "src/mpc/gmw.h"
#include "src/net/sim_network.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"

namespace dstress::mpc {
namespace {

using circuit::Builder;
using circuit::Circuit;
using circuit::Word;

TEST(SharingTest, ReconstructInvertsShare) {
  auto prg = crypto::ChaCha20Prg::FromSeed(1);
  BitVector bits = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  for (int parties : {1, 2, 3, 7, 20}) {
    auto shares = ShareBits(bits, parties, prg);
    ASSERT_EQ(shares.size(), static_cast<size_t>(parties));
    EXPECT_EQ(ReconstructBits(shares), bits) << parties;
  }
}

TEST(SharingTest, SharesLookRandom) {
  auto prg = crypto::ChaCha20Prg::FromSeed(2);
  BitVector zeros(1000, 0);
  auto shares = ShareBits(zeros, 2, prg);
  // Each individual share of the all-zero vector should be ~half ones.
  int ones = 0;
  for (uint8_t b : shares[0]) {
    ones += b;
  }
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 600);
}

TEST(SharingTest, WordConversions) {
  BitVector bits = WordToBits(0xABCD, 16);
  EXPECT_EQ(BitsToWord(bits, 0, 16), 0xABCDu);
  EXPECT_EQ(BitsToWord(bits, 0, 8), 0xCDu);
  EXPECT_EQ(BitsToWord(bits, 8, 8), 0xABu);
  // Signed read: 0xFF00 as 16-bit two's complement is -256.
  EXPECT_EQ(BitsToSignedWord(WordToBits(0xFF00, 16), 0, 16), -256);
  EXPECT_EQ(BitsToSignedWord(WordToBits(0x7FFF, 16), 0, 16), 32767);
}

void CheckTriples(const std::vector<BitTriples>& shares, size_t count) {
  for (size_t t = 0; t < count; t++) {
    int a = 0, b = 0, c = 0;
    for (const auto& share : shares) {
      a ^= ot::GetBit(share.a, t) ? 1 : 0;
      b ^= ot::GetBit(share.b, t) ? 1 : 0;
      c ^= ot::GetBit(share.c, t) ? 1 : 0;
    }
    ASSERT_EQ(c, a & b) << "triple " << t;
  }
}

class DealerTripleTest : public ::testing::TestWithParam<int> {};

TEST_P(DealerTripleTest, TriplesAreValid) {
  int parties = GetParam();
  constexpr size_t kCount = 500;
  std::vector<BitTriples> shares;
  std::vector<DealerTripleSource> sources;
  for (int p = 0; p < parties; p++) {
    sources.emplace_back(p, parties, /*dealer_seed=*/99);
  }
  for (auto& s : sources) {
    shares.push_back(s.Generate(kCount));
  }
  CheckTriples(shares, kCount);
}

TEST_P(DealerTripleTest, SequentialBatchesStayAligned) {
  int parties = GetParam();
  std::vector<DealerTripleSource> sources;
  for (int p = 0; p < parties; p++) {
    sources.emplace_back(p, parties, 7);
  }
  for (size_t batch : {10u, 64u, 65u, 100u}) {
    std::vector<BitTriples> shares;
    for (auto& s : sources) {
      shares.push_back(s.Generate(batch));
    }
    CheckTriples(shares, batch);
  }
}

// Bulk-generation offset regression: the batched evaluation path draws
// wildly different batch sizes call to call (one bulk range per EvalBatch).
// The per-call tape advance must keep every party's derivation in sync for
// any agreed size sequence — checked per batch and over the concatenation
// of all batches.
TEST_P(DealerTripleTest, InterleavedBatchSizesStayAligned) {
  int parties = GetParam();
  std::vector<DealerTripleSource> sources;
  for (int p = 0; p < parties; p++) {
    sources.emplace_back(p, parties, 1234);
  }
  std::vector<BitTriples> all(parties);
  for (size_t batch : {1u, 6500u, 3u, 130u, 64u, 1u}) {
    std::vector<BitTriples> shares;
    for (auto& s : sources) {
      shares.push_back(s.Generate(batch));
    }
    CheckTriples(shares, batch);
    for (int p = 0; p < parties; p++) {
      BitTriples& acc = all[p];
      size_t old = acc.count;
      acc.count += batch;
      acc.a.resize((acc.count + 63) / 64, 0);
      acc.b.resize((acc.count + 63) / 64, 0);
      acc.c.resize((acc.count + 63) / 64, 0);
      for (size_t t = 0; t < batch; t++) {
        ot::SetBit(acc.a, old + t, ot::GetBit(shares[p].a, t));
        ot::SetBit(acc.b, old + t, ot::GetBit(shares[p].b, t));
        if (!shares[p].c.empty()) {
          ot::SetBit(acc.c, old + t, ot::GetBit(shares[p].c, t));
        }
      }
    }
  }
  CheckTriples(all, all[0].count);
}

// Every Generate call must deal from a fresh PRG stream: the per-call
// counter selects a disjoint stream-id range, so no call can replay an
// earlier call's tape (the old per-bit seed perturbation could alias a
// neighboring source's seed).
TEST(DealerTripleSourceTest, FreshCallsUseFreshTape) {
  DealerTripleSource source(0, 3, 42);
  BitTriples first = source.Generate(64);
  BitTriples second = source.Generate(64);
  EXPECT_NE(first.a, second.a);
  EXPECT_NE(first.b, second.b);
}

// SliceTriples must preserve triple validity across arbitrary cut points —
// the bulk draw of GmwParty::EvalBatch is split per instance this way.
TEST_P(DealerTripleTest, SlicedBulkBatchesAreValidTriples) {
  int parties = GetParam();
  constexpr size_t kPerInstance = 97;
  constexpr size_t kInstances = 5;
  std::vector<BitTriples> bulk;
  for (int p = 0; p < parties; p++) {
    DealerTripleSource source(p, parties, 77);
    bulk.push_back(source.Generate(kPerInstance * kInstances));
  }
  for (size_t j = 0; j < kInstances; j++) {
    std::vector<BitTriples> slice;
    for (int p = 0; p < parties; p++) {
      slice.push_back(SliceTriples(bulk[p], j * kPerInstance, kPerInstance));
    }
    CheckTriples(slice, kPerInstance);
  }
}

INSTANTIATE_TEST_SUITE_P(Parties, DealerTripleTest, ::testing::Values(1, 2, 3, 5, 8));

class OtTripleTest : public ::testing::TestWithParam<int> {};

TEST_P(OtTripleTest, TriplesAreValid) {
  int parties = GetParam();
  constexpr size_t kCount = 300;
  net::SimNetwork net(parties);
  std::vector<net::NodeId> ids(parties);
  for (int i = 0; i < parties; i++) {
    ids[i] = i;
  }
  std::vector<BitTriples> shares(parties);
  std::vector<std::thread> threads;
  for (int p = 0; p < parties; p++) {
    threads.emplace_back([&, p] {
      OtTripleSource source(&net, ids, p, crypto::ChaCha20Prg::FromSeed(100 + p));
      shares[p] = source.Generate(kCount);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  CheckTriples(shares, kCount);
}

INSTANTIATE_TEST_SUITE_P(Parties, OtTripleTest, ::testing::Values(2, 3, 4, 5));

// Builds a circuit exercising every gate type and word op.
Circuit MixedCircuit() {
  Builder b;
  Word x = b.InputWord(12);
  Word y = b.InputWord(12);
  Word sum = b.Add(x, y);
  Word product = b.Mul(x, y);
  Word q, r;
  b.DivMod(x, y, &q, &r);
  b.OutputWord(sum);
  b.OutputWord(product);
  b.OutputWord(q);
  b.Output(b.Ult(x, y));
  b.Output(b.Not(b.Eq(x, y)));
  b.OutputWord(b.MuxWord(b.Ult(y, x), x, y));
  return b.Build();
}

class GmwTest : public ::testing::TestWithParam<int> {};

TEST_P(GmwTest, MatchesPlaintextEvalWithDealerTriples) {
  int parties = GetParam();
  Circuit c = MixedCircuit();
  auto prg = crypto::ChaCha20Prg::FromSeed(77);
  for (int trial = 0; trial < 3; trial++) {
    BitVector inputs(c.num_inputs());
    for (auto& bit : inputs) {
      bit = prg.NextBit() ? 1 : 0;
    }
    auto expected = c.Eval(inputs);
    net::SimNetwork net(parties);
    auto shares = ShareBits(inputs, parties, prg);
    std::vector<BitVector> outputs(parties);
    std::vector<std::thread> threads;
    for (int p = 0; p < parties; p++) {
      threads.emplace_back([&, p] {
        std::vector<net::NodeId> ids(parties);
        for (int i = 0; i < parties; i++) {
          ids[i] = i;
        }
        DealerTripleSource triples(p, parties, 5);
        GmwParty party(&net, ids, p, &triples);
        outputs[p] = party.Eval(c, shares[p]);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    EXPECT_EQ(ReconstructBits(outputs), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Parties, GmwTest, ::testing::Values(2, 3, 5, 8, 12));

TEST(GmwTest, MatchesPlaintextEvalWithOtTriples) {
  constexpr int kParties = 3;
  Circuit c = MixedCircuit();
  auto prg = crypto::ChaCha20Prg::FromSeed(78);
  BitVector inputs(c.num_inputs());
  for (auto& bit : inputs) {
    bit = prg.NextBit() ? 1 : 0;
  }
  auto expected = c.Eval(inputs);
  net::SimNetwork net(kParties);
  auto shares = ShareBits(inputs, kParties, prg);
  std::vector<BitVector> outputs(kParties);
  std::vector<std::thread> threads;
  for (int p = 0; p < kParties; p++) {
    threads.emplace_back([&, p] {
      std::vector<net::NodeId> ids = {0, 1, 2};
      OtTripleSource triples(&net, ids, p, crypto::ChaCha20Prg::FromSeed(200 + p));
      GmwParty party(&net, ids, p, &triples);
      outputs[p] = party.Eval(c, shares[p]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(ReconstructBits(outputs), expected);
}

TEST(GmwTest, ConstOnlyCircuit) {
  // Circuits whose outputs are constants must still evaluate correctly
  // (the leader holds constants, others hold zero shares).
  Builder b;
  Word c = b.ConstWord(0x5A, 8);
  b.OutputWord(c);
  Circuit circuit = b.Build();
  constexpr int kParties = 3;
  net::SimNetwork net(kParties);
  std::vector<BitVector> outputs(kParties);
  std::vector<std::thread> threads;
  for (int p = 0; p < kParties; p++) {
    threads.emplace_back([&, p] {
      std::vector<net::NodeId> ids = {0, 1, 2};
      DealerTripleSource triples(p, kParties, 1);
      GmwParty party(&net, ids, p, &triples);
      outputs[p] = party.Eval(circuit, {});
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(BitsToWord(ReconstructBits(outputs), 0, 8), 0x5Au);
}

TEST(GmwTest, OpenRevealsSharedBits) {
  constexpr int kParties = 4;
  auto prg = crypto::ChaCha20Prg::FromSeed(79);
  BitVector secret(100);
  for (auto& bit : secret) {
    bit = prg.NextBit() ? 1 : 0;
  }
  net::SimNetwork net(kParties);
  auto shares = ShareBits(secret, kParties, prg);
  std::vector<BitVector> opened(kParties);
  std::vector<std::thread> threads;
  for (int p = 0; p < kParties; p++) {
    threads.emplace_back([&, p] {
      std::vector<net::NodeId> ids = {0, 1, 2, 3};
      DealerTripleSource triples(p, kParties, 1);
      GmwParty party(&net, ids, p, &triples);
      opened[p] = party.Open(shares[p]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int p = 0; p < kParties; p++) {
    EXPECT_EQ(opened[p], secret) << "party " << p;
  }
}

TEST(GmwTest, TrafficScalesWithParties) {
  // GMW total traffic is quadratic in the party count; per-party traffic is
  // linear (the paper's observation in §5.3).
  Circuit c = MixedCircuit();
  auto prg = crypto::ChaCha20Prg::FromSeed(80);
  BitVector inputs(c.num_inputs(), 0);
  std::vector<uint64_t> per_party;
  for (int parties : {2, 4, 8}) {
    net::SimNetwork net(parties);
    auto shares = ShareBits(inputs, parties, prg);
    std::vector<std::thread> threads;
    for (int p = 0; p < parties; p++) {
      threads.emplace_back([&, p, parties] {
        std::vector<net::NodeId> ids(parties);
        for (int i = 0; i < parties; i++) {
          ids[i] = i;
        }
        DealerTripleSource triples(p, parties, 1);
        GmwParty party(&net, ids, p, &triples);
        party.Eval(c, shares[p]);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    per_party.push_back(net.NodeStats(0).bytes_sent);
  }
  // Per-party bytes = (parties-1) * layer bytes: ratios should be ~3x, ~7/3.
  EXPECT_NEAR(static_cast<double>(per_party[1]) / per_party[0], 3.0, 0.2);
  EXPECT_NEAR(static_cast<double>(per_party[2]) / per_party[1], 7.0 / 3.0, 0.2);
}

}  // namespace
}  // namespace dstress::mpc
