// The paper's deployment shape, reproduced over loopback: bank processes
// are externally exec'd dstress_node binaries that dial the driver by
// host:port (no fork inheritance of any driver state — each node gets only
// its command line, exactly like a process started on another machine).
// The run's results and per-node TrafficStats must stay bit-identical to
// the same scenario over the in-process `sim` transport.
//
// Skipped when the dstress_node binary is not present (running the test
// outside the build tree).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/cli/scenario.h"
#include "src/engine/engine.h"
#include "src/ha/faulty.h"
#include "src/net/tcp_socket.h"
#include "src/net/transport_spec.h"

namespace dstress {
namespace {

std::string FindNodeBinary() {
  const char* candidates[] = {"../examples/dstress_node", "examples/dstress_node"};
  for (const char* path : candidates) {
    if (access(path, X_OK) == 0) {
      return path;
    }
  }
  return "";
}

int PickUnusedPort() {
  int fd = net::TcpListen("127.0.0.1", 0, 1);
  int port = net::TcpListenPort(fd);
  close(fd);
  return port;
}

// Launches one bank the way an operator on a remote machine would: a fresh
// dstress_node process told only the driver's endpoint and its bank id.
pid_t SpawnNode(const std::string& program, int bank, int num_nodes, int driver_port) {
  std::string bank_arg = std::to_string(bank);
  std::string n_arg = std::to_string(num_nodes);
  std::string port_arg = std::to_string(driver_port);
  pid_t pid = fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    execl(program.c_str(), program.c_str(), "--bank", bank_arg.c_str(), "--num-nodes",
          n_arg.c_str(), "--driver-host", "127.0.0.1", "--driver-port", port_arg.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

void ReapClean(const std::vector<pid_t>& pids) {
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << "node pid " << pid;
  }
}

// A multi-machine scenario file, parameterized on the rendezvous port the
// test picked: `transport tcp` with `node` host directives, as documented
// in docs/scenario-format.md.
std::string DistributedScenario(int port, int banks) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "network core_periphery %d 2\n"
                "model en\n"
                "mode secure\n"
                "transport tcp 127.0.0.1:%d\n",
                banks, port);
  std::string text = head;
  for (int bank = 0; bank < banks; bank++) {
    text += "node " + std::to_string(bank) + " 127.0.0.1\n";
  }
  text +=
      "block_size 3\n"
      "iterations 2\n"
      "shock 0\n"
      "seed 7\n";
  return text;
}

TEST(TcpDistributedTest, ScenarioRunsAgainstExecdNodesBitIdenticalToSim) {
  constexpr int kBanks = 5;
  std::string program = FindNodeBinary();
  if (program.empty()) {
    GTEST_SKIP() << "dstress_node binary not found";
  }

  int port = PickUnusedPort();
  std::string error;
  auto tcp_spec = cli::ParseScenario(DistributedScenario(port, kBanks), &error);
  ASSERT_TRUE(tcp_spec.has_value()) << error;
  ASSERT_TRUE(tcp_spec->transport.external_nodes);

  // The identical run over the in-process transport is the reference.
  engine::RunSpec sim_spec = *tcp_spec;
  sim_spec.transport = net::SimTransportSpec();
  engine::Engine sim_engine(sim_spec);
  engine::RunReport sim_report = sim_engine.Run();

  // Start the bank processes first; they retry the rendezvous dial until
  // the driver (the Engine constructor) binds it.
  std::vector<pid_t> pids;
  for (int bank = 0; bank < kBanks; bank++) {
    pids.push_back(SpawnNode(program, bank, kBanks, port));
  }

  {
    engine::Engine tcp_engine(*tcp_spec);
    engine::RunReport tcp_report = tcp_engine.Run();

    EXPECT_EQ(tcp_report.released, sim_report.released);
    EXPECT_EQ(tcp_report.reference, sim_report.reference);
    EXPECT_EQ(tcp_report.iterations, sim_report.iterations);
    for (int bank = 0; bank < kBanks; bank++) {
      net::TrafficStats tcp_stats = tcp_engine.transport().NodeStats(bank);
      net::TrafficStats sim_stats = sim_engine.transport().NodeStats(bank);
      EXPECT_EQ(tcp_stats.bytes_sent, sim_stats.bytes_sent) << "bank " << bank;
      EXPECT_EQ(tcp_stats.bytes_received, sim_stats.bytes_received) << "bank " << bank;
      EXPECT_EQ(tcp_stats.messages_sent, sim_stats.messages_sent) << "bank " << bank;
      EXPECT_EQ(tcp_stats.messages_received, sim_stats.messages_received) << "bank " << bank;
    }
  }  // Engine teardown EOFs the nodes: they must all exit 0

  ReapClean(pids);
}

// The same deployment at the transport layer, with pinned per-bank listen
// ports: every node passes --listen-host/--listen-port/--advertise-host
// and the driver's endpoint table verifies the placement.
TEST(TcpDistributedTest, PinnedEndpointsAcceptMatchingNodes) {
  constexpr int kBanks = 3;
  std::string program = FindNodeBinary();
  if (program.empty()) {
    GTEST_SKIP() << "dstress_node binary not found";
  }

  int driver_port = PickUnusedPort();
  std::vector<int> node_ports;
  for (int bank = 0; bank < kBanks; bank++) {
    node_ports.push_back(PickUnusedPort());
  }

  std::vector<pid_t> pids;
  std::string n_arg = std::to_string(kBanks);
  std::string driver_port_arg = std::to_string(driver_port);
  for (int bank = 0; bank < kBanks; bank++) {
    std::string bank_arg = std::to_string(bank);
    std::string listen_port_arg = std::to_string(node_ports[bank]);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      execl(program.c_str(), program.c_str(), "--bank", bank_arg.c_str(), "--num-nodes",
            n_arg.c_str(), "--driver-host", "127.0.0.1", "--driver-port",
            driver_port_arg.c_str(), "--listen-host", "127.0.0.1", "--listen-port",
            listen_port_arg.c_str(), "--advertise-host", "127.0.0.1",
            static_cast<char*>(nullptr));
      _exit(127);
    }
    pids.push_back(pid);
  }

  {
    net::TransportSpec spec = net::TcpTransportSpec("127.0.0.1", driver_port);
    spec.external_nodes = true;
    for (int bank = 0; bank < kBanks; bank++) {
      spec.node_endpoints.push_back(net::PeerEndpoint{"127.0.0.1", node_ports[bank]});
    }
    auto net = net::MakeTransport(spec, kBanks);
    net->SendBatch(0, 2, {Bytes{1}, Bytes{2}}, 5);
    net->Send(2, 1, Bytes{3}, 5);
    EXPECT_EQ(net->Recv(2, 0, 5), Bytes{1});
    EXPECT_EQ(net->Recv(2, 0, 5), Bytes{2});
    EXPECT_EQ(net->Recv(1, 2, 5), Bytes{3});
  }

  ReapClean(pids);
}

// --- HA recovery (docs/ha.md) ----------------------------------------------
//
// The fidelity contract: a secure run that loses a bank process (SIGKILL)
// or a driver link mid-run and recovers through the src/ha session-resume
// machinery must release figures and per-bank TrafficStats bit-identical
// to the fault-free run. Faults are scripted by cumulative send count
// (ha::FaultyTransport), so they hit the same protocol position every run.

// The HA scenario over the deterministic fault wrapper; the inner backend
// starts as sim (the reference) and the test rewires it to tcp.
std::string HaScenario(int banks) {
  std::string text =
      "network core_periphery " + std::to_string(banks) +
      " 2\n"
      "model en\n"
      "mode secure\n"
      "transport faulty sim\n"
      "ha on\n"
      "ha heartbeat_ms 50\n"
      "ha suspect_after_ms 200\n"
      "ha dead_after_ms 400\n"
      "ha resume_timeout_ms 20000\n"
      "block_size 3\n"
      "iterations 2\n"
      "shock 0\n"
      "seed 7\n";
  return text;
}

// Runs the spec and collects the report plus per-bank stats; `sends_out`
// (optional) receives the wrapper's cumulative send count, used to aim the
// fault at the middle of the protocol.
void RunAndCollect(const engine::RunSpec& spec, int banks, engine::RunReport* report,
                   std::vector<net::TrafficStats>* stats, uint64_t* sends_out,
                   int* resumes_out) {
  engine::Engine engine(spec);
  *report = engine.Run();
  for (int bank = 0; bank < banks; bank++) {
    stats->push_back(engine.transport().NodeStats(bank));
  }
  if (sends_out != nullptr) {
    const auto* faulty = dynamic_cast<const ha::FaultyTransport*>(&engine.transport());
    ASSERT_NE(faulty, nullptr) << "spec did not resolve the faulty wrapper";
    *sends_out = faulty->sends();
  }
  if (resumes_out != nullptr) {
    *resumes_out = engine.transport().HaResumeCount();
  }
}

void ExpectIdenticalRun(const engine::RunReport& got, const engine::RunReport& want,
                        const std::vector<net::TrafficStats>& got_stats,
                        const std::vector<net::TrafficStats>& want_stats) {
  EXPECT_EQ(got.released, want.released);
  EXPECT_EQ(got.reference, want.reference);
  EXPECT_EQ(got.iterations, want.iterations);
  ASSERT_EQ(got_stats.size(), want_stats.size());
  for (size_t bank = 0; bank < got_stats.size(); bank++) {
    EXPECT_EQ(got_stats[bank].bytes_sent, want_stats[bank].bytes_sent) << "bank " << bank;
    EXPECT_EQ(got_stats[bank].bytes_received, want_stats[bank].bytes_received)
        << "bank " << bank;
    EXPECT_EQ(got_stats[bank].messages_sent, want_stats[bank].messages_sent)
        << "bank " << bank;
    EXPECT_EQ(got_stats[bank].messages_received, want_stats[bank].messages_received)
        << "bank " << bank;
  }
}

void RunHaRecoveryCase(net::FaultSpec::Action action, int victim) {
  constexpr int kBanks = 5;
  std::string program = FindNodeBinary();
  if (program.empty()) {
    GTEST_SKIP() << "dstress_node binary not found";
  }

  std::string error;
  auto base = cli::ParseScenario(HaScenario(kBanks), &error);
  ASSERT_TRUE(base.has_value()) << error;

  // Fault-free reference over faulty(sim): yields the expected figures and
  // stats, and the total send count that aims the fault mid-protocol.
  std::vector<net::TrafficStats> want_stats;
  uint64_t total_sends = 0;
  engine::RunReport want;
  RunAndCollect(*base, kBanks, &want, &want_stats, &total_sends, nullptr);
  ASSERT_GT(total_sends, 3u);

  // The same scenario over faulty(tcp) with exec'd bank processes and one
  // scripted fault a third of the way through the run.
  engine::RunSpec tcp_spec = *base;
  tcp_spec.transport.faulty_inner = "tcp";
  tcp_spec.transport.node_program = program;
  net::FaultSpec fault;
  fault.action = action;
  fault.node = victim;
  fault.after_sends = total_sends / 3;
  tcp_spec.transport.faults = {fault};

  std::vector<net::TrafficStats> got_stats;
  int resumes = 0;
  engine::RunReport got;
  RunAndCollect(tcp_spec, kBanks, &got, &got_stats, nullptr, &resumes);
  EXPECT_GE(resumes, 1) << "the fault never triggered a session resume";
  ExpectIdenticalRun(got, want, got_stats, want_stats);
}

// SIGKILL one exec'd dstress_node mid-run; the driver auto-respawns it with
// --resume and replays the undelivered window.
TEST(TcpDistributedTest, HaRunSurvivesNodeKillWithIdenticalFigures) {
  RunHaRecoveryCase(net::FaultSpec::Action::kKillNode, /*victim=*/2);
}

// Sever one driver <-> bank socket mid-run; the surviving process dials
// back in and resumes its driver session in place.
TEST(TcpDistributedTest, HaRunSurvivesLinkDropWithIdenticalFigures) {
  RunHaRecoveryCase(net::FaultSpec::Action::kDropLink, /*victim=*/1);
}

}  // namespace
}  // namespace dstress
