#include "src/crypto/elgamal.h"

#include <gtest/gtest.h>

namespace dstress::crypto {
namespace {

class ElGamalTest : public ::testing::Test {
 protected:
  ElGamalTest() : prg_(ChaCha20Prg::FromSeed(42)), table_(2000) {}

  ChaCha20Prg prg_;
  DlogTable table_;
};

TEST_F(ElGamalTest, EncryptDecryptRoundTrip) {
  auto kp = ElGamalKeyGen(prg_);
  for (int64_t m : {0LL, 1LL, 2LL, 100LL, 1999LL, -1LL, -2000LL}) {
    auto ct = ElGamalEncrypt(kp.pub, m, prg_);
    int64_t out = 0;
    ASSERT_TRUE(table_.Decrypt(kp.secret, ct, &out)) << m;
    EXPECT_EQ(out, m);
  }
}

TEST_F(ElGamalTest, DecryptOutOfRangeFails) {
  auto kp = ElGamalKeyGen(prg_);
  auto ct = ElGamalEncrypt(kp.pub, 2001, prg_);  // beyond the table range
  int64_t out = 0;
  EXPECT_FALSE(table_.Decrypt(kp.secret, ct, &out));
}

TEST_F(ElGamalTest, CiphertextsAreRandomized) {
  auto kp = ElGamalKeyGen(prg_);
  auto a = ElGamalEncrypt(kp.pub, 5, prg_);
  auto b = ElGamalEncrypt(kp.pub, 5, prg_);
  EXPECT_NE(a.c1, b.c1);
  EXPECT_NE(a.c2, b.c2);
}

TEST_F(ElGamalTest, WrongKeyFailsToDecrypt) {
  auto kp1 = ElGamalKeyGen(prg_);
  auto kp2 = ElGamalKeyGen(prg_);
  auto ct = ElGamalEncrypt(kp1.pub, 7, prg_);
  int64_t out = 0;
  // Decryption with the wrong key yields a random-looking point that is
  // (overwhelmingly) outside a small table.
  EXPECT_FALSE(table_.Decrypt(kp2.secret, ct, &out));
}

TEST_F(ElGamalTest, AdditiveHomomorphism) {
  auto kp = ElGamalKeyGen(prg_);
  for (auto [a, b] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 2}, {100, 200}, {-50, 75}, {-100, -200}, {999, -999}}) {
    auto sum_ct = HomAdd(ElGamalEncrypt(kp.pub, a, prg_), ElGamalEncrypt(kp.pub, b, prg_));
    int64_t out = 0;
    ASSERT_TRUE(table_.Decrypt(kp.secret, sum_ct, &out));
    EXPECT_EQ(out, a + b);
  }
}

TEST_F(ElGamalTest, HomAddPlain) {
  auto kp = ElGamalKeyGen(prg_);
  auto ct = ElGamalEncrypt(kp.pub, 10, prg_);
  for (int64_t delta : {0LL, 1LL, -4LL, 500LL, -510LL}) {
    int64_t out = 0;
    ASSERT_TRUE(table_.Decrypt(kp.secret, HomAddPlain(ct, delta), &out));
    EXPECT_EQ(out, 10 + delta);
  }
}

TEST_F(ElGamalTest, LongHomomorphicChain) {
  auto kp = ElGamalKeyGen(prg_);
  auto acc = ElGamalEncrypt(kp.pub, 0, prg_);
  int64_t expected = 0;
  for (int i = 1; i <= 40; i++) {
    acc = HomAdd(acc, ElGamalEncrypt(kp.pub, i, prg_));
    expected += i;
  }
  int64_t out = 0;
  ASSERT_TRUE(table_.Decrypt(kp.secret, acc, &out));
  EXPECT_EQ(out, expected);
}

TEST_F(ElGamalTest, RerandomizedKeyNeedsAdjustment) {
  auto kp = ElGamalKeyGen(prg_);
  U256 r = prg_.NextScalar(CurveOrder());
  auto blinded = RandomizePublicKey(kp.pub, r);
  auto ct = ElGamalEncrypt(blinded, 33, prg_);
  int64_t out = 0;
  // Without adjustment the original key cannot decrypt...
  EXPECT_FALSE(table_.Decrypt(kp.secret, ct, &out));
  // ...with adjustment it can.
  ASSERT_TRUE(table_.Decrypt(kp.secret, AdjustCiphertext(ct, r), &out));
  EXPECT_EQ(out, 33);
}

TEST_F(ElGamalTest, AdjustmentPreservesHomomorphism) {
  auto kp = ElGamalKeyGen(prg_);
  U256 r = prg_.NextScalar(CurveOrder());
  auto blinded = RandomizePublicKey(kp.pub, r);
  auto sum = HomAdd(ElGamalEncrypt(blinded, 11, prg_), ElGamalEncrypt(blinded, 31, prg_));
  int64_t out = 0;
  ASSERT_TRUE(table_.Decrypt(kp.secret, AdjustCiphertext(sum, r), &out));
  EXPECT_EQ(out, 42);
}

TEST_F(ElGamalTest, MultiRecipientSharedEphemeral) {
  std::vector<ElGamalKeyPair> keypairs;
  std::vector<ElGamalPublicKey> pubs;
  std::vector<int64_t> msgs;
  for (int i = 0; i < 6; i++) {
    keypairs.push_back(ElGamalKeyGen(prg_));
    pubs.push_back(keypairs.back().pub);
    msgs.push_back(10 * i - 20);
  }
  auto multi = ElGamalEncryptMulti(pubs, msgs, prg_);
  ASSERT_EQ(multi.c2.size(), 6u);
  for (int i = 0; i < 6; i++) {
    ElGamalCiphertext ct{multi.c1, multi.c2[i]};
    int64_t out = 0;
    ASSERT_TRUE(table_.Decrypt(keypairs[i].secret, ct, &out));
    EXPECT_EQ(out, msgs[i]);
  }
}

TEST_F(ElGamalTest, MultiRecipientSizeAccounting) {
  std::vector<ElGamalPublicKey> pubs(5, ElGamalKeyGen(prg_).pub);
  std::vector<int64_t> msgs(5, 1);
  auto multi = ElGamalEncryptMulti(pubs, msgs, prg_);
  EXPECT_EQ(multi.SerializedSize(), (1 + 5) * EcPoint::kCompressedSize);
}

TEST_F(ElGamalTest, EncodeExponentNegativeValues) {
  // -m encodes as n - m; adding m*G must give infinity.
  U256 encoded = EncodeExponent(-17);
  EXPECT_TRUE(MulBase(encoded).Add(MulBase(U256(17))).IsInfinity());
}

TEST_F(ElGamalTest, SerializationRoundTrip) {
  auto kp = ElGamalKeyGen(prg_);
  auto ct = ElGamalEncrypt(kp.pub, 55, prg_);
  Bytes raw = ct.Serialize();
  EXPECT_EQ(raw.size(), ElGamalCiphertext::kSerializedSize);
  auto back = ElGamalCiphertext::Deserialize(raw);
  int64_t out = 0;
  ASSERT_TRUE(table_.Decrypt(kp.secret, back, &out));
  EXPECT_EQ(out, 55);

  Bytes pub_raw = kp.pub.Serialize();
  EXPECT_EQ(ElGamalPublicKey::Deserialize(pub_raw).point, kp.pub.point);
}

TEST_F(ElGamalTest, DeterministicEphemeralIsReproducible) {
  auto kp = ElGamalKeyGen(prg_);
  U256 y = prg_.NextScalar(CurveOrder());
  auto a = ElGamalEncryptWithEphemeral(kp.pub, 9, y);
  auto b = ElGamalEncryptWithEphemeral(kp.pub, 9, y);
  EXPECT_EQ(a.c1, b.c1);
  EXPECT_EQ(a.c2, b.c2);
}

TEST(DlogTableTest, CoversSymmetricRange) {
  DlogTable table(50);
  EXPECT_EQ(table.entries(), 101u);
  for (int64_t m = -50; m <= 50; m++) {
    int64_t out = 0;
    ASSERT_TRUE(table.Lookup(MulBase(EncodeExponent(m)), &out)) << m;
    EXPECT_EQ(out, m);
  }
  int64_t out = 0;
  EXPECT_FALSE(table.Lookup(MulBase(U256(51)), &out));
  EXPECT_FALSE(table.Lookup(MulBase(EncodeExponent(-51)), &out));
}

TEST(DlogTableTest, LargeRangeBuildsWithoutDigestCollisions) {
  // The build aborts on any truncated-digest collision; a deliberately large
  // range exercises that check across ~600k emplaces and the chunked batch
  // compression path, with spot lookups at the extremes and interior.
  constexpr int64_t kRange = 300000;
  DlogTable table(kRange);
  EXPECT_EQ(table.entries(), static_cast<size_t>(2 * kRange + 1));
  for (int64_t m : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{12345}, int64_t{-299999},
                    kRange, -kRange}) {
    int64_t out = 0;
    ASSERT_TRUE(table.Lookup(MulBase(EncodeExponent(m)), &out)) << m;
    EXPECT_EQ(out, m);
  }
  int64_t out = 0;
  EXPECT_FALSE(table.Lookup(MulBase(EncodeExponent(kRange + 1)), &out));
  // The compressed-bytes lookup used by the batched decrypt path agrees.
  auto compressed = MulBase(EncodeExponent(777)).Compress();
  ASSERT_TRUE(table.LookupCompressed(compressed.data(), &out));
  EXPECT_EQ(out, 777);
}

TEST(DlogTableTest, ZeroRangeOnlyInfinity) {
  DlogTable table(0);
  int64_t out = -1;
  ASSERT_TRUE(table.Lookup(EcPoint::Infinity(), &out));
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(table.Lookup(MulBase(U256(1)), &out));
}

}  // namespace
}  // namespace dstress::crypto
