#include "src/audit/verify.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/engine/engine.h"
#include "src/graph/graph.h"
#include "src/net/sim_network.h"
#include "src/programs/private_sum.h"

namespace dstress::audit {
namespace {

TEST(TranscriptLogTest, ChainVerifiesAndDetectsTamper) {
  TranscriptLog log;
  log.Append(Direction::kSent, 1, 7, Bytes{1, 2, 3});
  log.Append(Direction::kReceived, 2, 7, Bytes{4, 5});
  EXPECT_TRUE(log.VerifyChain());

  // A copy whose middle event is altered no longer matches the digest.
  std::vector<Event> tampered = log.events();
  tampered[0].payload_size = 999;
  Digest seed;
  seed.fill(0);
  EXPECT_NE(TranscriptLog::FoldChain(seed, tampered), log.chain_digest());
}

TEST(TranscriptLogTest, ChainDependsOnOrder) {
  TranscriptLog a;
  a.Append(Direction::kSent, 1, 0, Bytes{1});
  a.Append(Direction::kSent, 2, 0, Bytes{2});
  TranscriptLog b;
  b.Append(Direction::kSent, 2, 0, Bytes{2});
  b.Append(Direction::kSent, 1, 0, Bytes{1});
  EXPECT_NE(a.chain_digest(), b.chain_digest());
}

TEST(TranscriptLogTest, ChainDependsOnSessionAndPeer) {
  TranscriptLog a;
  a.Append(Direction::kSent, 1, 5, Bytes{9});
  TranscriptLog b;
  b.Append(Direction::kSent, 1, 6, Bytes{9});
  TranscriptLog c;
  c.Append(Direction::kSent, 3, 5, Bytes{9});
  EXPECT_NE(a.chain_digest(), b.chain_digest());
  EXPECT_NE(a.chain_digest(), c.chain_digest());
}

TEST(AuditVerifyTest, CleanExchangePasses) {
  net::SimNetwork net(3);
  TranscriptRecorder recorder(3);
  net.SetObserver(&recorder);

  net.Send(0, 1, Bytes{1, 2}, 4);
  net.Send(1, 2, Bytes{3}, 4);
  EXPECT_EQ(net.Recv(1, 0, 4), (Bytes{1, 2}));
  EXPECT_EQ(net.Recv(2, 1, 4), (Bytes{3}));

  AuditReport report = VerifyTranscripts(recorder);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditVerifyTest, UndeliveredMessageIsReported) {
  net::SimNetwork net(2);
  TranscriptRecorder recorder(2);
  net.SetObserver(&recorder);

  net.Send(0, 1, Bytes{1}, 0);  // never received

  AuditReport report = VerifyTranscripts(recorder);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.discrepancies.size(), 1u);
  EXPECT_EQ(report.discrepancies[0].description, "sent but never received");
  EXPECT_EQ(report.discrepancies[0].sender, 0);
  EXPECT_EQ(report.discrepancies[0].receiver, 1);
}

TEST(AuditVerifyTest, ForgedReceiveIsReported) {
  net::SimNetwork net(2);
  TranscriptRecorder recorder(2);
  net.SetObserver(&recorder);

  net.Send(0, 1, Bytes{1}, 0);
  (void)net.Recv(1, 0, 0);
  // Node 1 additionally claims to have received a message node 0 never
  // sent (e.g. fabricated to frame node 0).
  recorder.mutable_log(1).Append(Direction::kReceived, 0, 0, Bytes{0xde, 0xad});

  AuditReport report = VerifyTranscripts(recorder);
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.discrepancies.size(), 1u);
  EXPECT_EQ(report.discrepancies[0].description, "received but never sent");
  EXPECT_EQ(report.discrepancies[0].message_index, 1u);
}

TEST(AuditVerifyTest, PayloadSubstitutionPinpointsIndex) {
  TranscriptRecorder recorder(2);
  // Simulate logs diverging on the second of three messages.
  recorder.mutable_log(0).Append(Direction::kSent, 1, 9, Bytes{1});
  recorder.mutable_log(0).Append(Direction::kSent, 1, 9, Bytes{2});
  recorder.mutable_log(0).Append(Direction::kSent, 1, 9, Bytes{3});
  recorder.mutable_log(1).Append(Direction::kReceived, 0, 9, Bytes{1});
  recorder.mutable_log(1).Append(Direction::kReceived, 0, 9, Bytes{0xff});
  recorder.mutable_log(1).Append(Direction::kReceived, 0, 9, Bytes{3});

  AuditReport report = VerifyTranscripts(recorder);
  EXPECT_TRUE(report.chains_ok);
  EXPECT_FALSE(report.pairwise_ok);
  ASSERT_EQ(report.discrepancies.size(), 1u);
  EXPECT_EQ(report.discrepancies[0].message_index, 1u);
  EXPECT_EQ(report.discrepancies[0].description, "payload digest mismatch");
}

TEST(AuditVerifyTest, ConcurrentTrafficStaysConsistent) {
  constexpr int kNodes = 6;
  constexpr int kMessages = 200;
  net::SimNetwork net(kNodes);
  TranscriptRecorder recorder(kNodes);
  net.SetObserver(&recorder);

  std::vector<std::thread> threads;
  for (int sender = 0; sender < kNodes; sender++) {
    threads.emplace_back([&net, sender] {
      for (int i = 0; i < kMessages; i++) {
        int to = (sender + 1 + i % (kNodes - 1)) % kNodes;
        net.Send(sender, to, Bytes{static_cast<uint8_t>(i), static_cast<uint8_t>(sender)},
                 /*session=*/3);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Drain: each node receives exactly what was addressed to it.
  for (int receiver = 0; receiver < kNodes; receiver++) {
    for (int from = 0; from < kNodes; from++) {
      if (from == receiver) {
        continue;
      }
      // Count how many messages `from` addressed to `receiver`.
      int expected = 0;
      for (int i = 0; i < kMessages; i++) {
        if ((from + 1 + i % (kNodes - 1)) % kNodes == receiver) {
          expected++;
        }
      }
      for (int i = 0; i < expected; i++) {
        (void)net.Recv(receiver, from, 3);
      }
    }
  }

  AuditReport report = VerifyTranscripts(recorder);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(AuditVerifyTest, FullDStressRunAudits) {
  // End-to-end: attach a recorder to a real engine run and verify that
  // the complete protocol transcript audits clean.
  graph::Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 0);

  programs::PrivateSumParams params;
  params.degree_bound = 1;
  params.noise.alpha = 1e-12;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 10;

  engine::RunSpec spec;
  spec.graph = g;
  spec.model = engine::ContagionModel::kCustom;
  spec.custom_program = programs::BuildPrivateSumProgram(params);
  std::vector<uint32_t> values = {10, 20, 30, 40};
  spec.custom_states = programs::MakePrivateSumStates(values, params.value_bits);
  spec.block_size = 3;
  spec.seed = 31;
  engine::Engine engine(spec);

  TranscriptRecorder recorder(g.num_vertices());
  engine.AttachObserver(&recorder);

  engine::RunReport run = engine.Run();
  EXPECT_EQ(run.released, 100);

  AuditReport report = VerifyTranscripts(recorder);
  EXPECT_TRUE(report.ok()) << report.ToString();
  // Every node participated: nonempty transcript with a valid chain.
  for (int v = 0; v < g.num_vertices(); v++) {
    EXPECT_FALSE(recorder.log(v).events().empty()) << "node " << v;
  }
}

}  // namespace
}  // namespace dstress::audit
