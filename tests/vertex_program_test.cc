#include "src/core/vertex_program.h"

#include <gtest/gtest.h>

#include "src/mpc/sharing.h"

namespace dstress::core {
namespace {

VertexProgram IdentityProgram(int degree, int state_bits, int message_bits) {
  VertexProgram p;
  p.state_bits = state_bits;
  p.message_bits = message_bits;
  p.degree_bound = degree;
  p.aggregate_bits = 20;
  p.build_update = [](circuit::Builder& b, const circuit::Word& state,
                      const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                      std::vector<circuit::Word>* out_msgs) {
    *new_state = state;
    for (const auto& msg : in_msgs) {
      out_msgs->push_back(msg);  // echo
    }
    (void)b;
  };
  p.build_contribution = [](circuit::Builder& b, const circuit::Word& state) {
    return b.ZeroExtend(circuit::Word(state.begin(), state.begin() + 8), 20);
  };
  return p;
}

TEST(VertexProgramTest, UpdateCircuitShape) {
  VertexProgram p = IdentityProgram(3, 16, 8);
  circuit::Circuit c = BuildUpdateCircuit(p);
  EXPECT_EQ(c.num_inputs(), 16u + 3 * 8);
  EXPECT_EQ(c.num_outputs(), 16u + 3 * 8);
  // Echo program: outputs equal inputs.
  mpc::BitVector in(c.num_inputs());
  for (size_t i = 0; i < in.size(); i++) {
    in[i] = (i * 7) % 3 == 0;
  }
  EXPECT_EQ(c.Eval(in), in);
}

TEST(VertexProgramTest, AggregateCircuitSumsContributions) {
  VertexProgram p = IdentityProgram(1, 16, 8);
  circuit::Circuit agg = BuildAggregateCircuit(p, /*group_size=*/4, /*with_noise=*/false);
  EXPECT_EQ(agg.num_inputs(), 4u * 16);
  mpc::BitVector in;
  uint64_t expected = 0;
  for (uint64_t v = 0; v < 4; v++) {
    uint64_t low = 20 + 3 * v;
    mpc::AppendBits(&in, mpc::WordToBits(low | (0xAB00), 16));  // high byte ignored
    expected += low;
  }
  auto out = agg.Eval(in);
  EXPECT_EQ(mpc::BitsToWord(out, 0, 20), expected);
}

TEST(VertexProgramTest, AggregateWithNoiseAddsInputBits) {
  VertexProgram p = IdentityProgram(1, 16, 8);
  p.output_noise.alpha = 0.5;
  p.output_noise.magnitude_bits = 6;
  p.output_noise.threshold_bits = 8;
  circuit::Circuit plain = BuildAggregateCircuit(p, 2, false);
  circuit::Circuit noised = BuildAggregateCircuit(p, 2, true);
  EXPECT_EQ(noised.num_inputs(), plain.num_inputs() + dp::NoiseInputBits(p.output_noise));
  EXPECT_GT(noised.stats().num_and, plain.stats().num_and);
}

TEST(VertexProgramTest, CombineCircuitSumsPartials) {
  VertexProgram p = IdentityProgram(1, 16, 8);
  circuit::Circuit combine = BuildCombineCircuit(p, /*num_partials=*/3, /*with_noise=*/false);
  EXPECT_EQ(combine.num_inputs(), 3u * 20);
  mpc::BitVector in;
  mpc::AppendBits(&in, mpc::WordToBits(100, 20));
  mpc::AppendBits(&in, mpc::WordToBits(250, 20));
  mpc::AppendBits(&in, mpc::WordToBits(7, 20));
  EXPECT_EQ(mpc::BitsToWord(combine.Eval(in), 0, 20), 357u);
}

TEST(VertexProgramTest, CombineHandlesNegativePartials) {
  // Two's-complement partials must sum correctly through the adder.
  VertexProgram p = IdentityProgram(1, 16, 8);
  circuit::Circuit combine = BuildCombineCircuit(p, 2, false);
  mpc::BitVector in;
  mpc::AppendBits(&in, mpc::WordToBits(static_cast<uint64_t>(-50) & 0xFFFFF, 20));
  mpc::AppendBits(&in, mpc::WordToBits(80, 20));
  EXPECT_EQ(mpc::BitsToSignedWord(combine.Eval(in), 0, 20), 30);
}

}  // namespace
}  // namespace dstress::core
