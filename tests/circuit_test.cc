#include "src/circuit/builder.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/mpc/sharing.h"

namespace dstress::circuit {
namespace {

using mpc::BitsToWord;
using mpc::BitVector;
using mpc::WordToBits;

// Evaluates a freshly built circuit on word inputs and returns word outputs.
std::vector<uint64_t> EvalWords(const Circuit& c, const std::vector<uint64_t>& inputs,
                                const std::vector<int>& in_bits,
                                const std::vector<int>& out_bits) {
  BitVector in;
  for (size_t i = 0; i < inputs.size(); i++) {
    mpc::AppendBits(&in, WordToBits(inputs[i], in_bits[i]));
  }
  auto out = c.Eval(in);
  std::vector<uint64_t> words;
  size_t cursor = 0;
  for (int bits : out_bits) {
    words.push_back(BitsToWord(out, cursor, bits));
    cursor += bits;
  }
  return words;
}

TEST(BuilderTest, SingleGateSemantics) {
  Builder b;
  Wire x = b.Input();
  Wire y = b.Input();
  b.Output(b.Xor(x, y));
  b.Output(b.And(x, y));
  b.Output(b.Or(x, y));
  b.Output(b.Not(x));
  b.Output(b.Mux(x, y, b.Zero()));
  Circuit c = b.Build();
  for (int xv = 0; xv <= 1; xv++) {
    for (int yv = 0; yv <= 1; yv++) {
      auto out = c.Eval({static_cast<uint8_t>(xv), static_cast<uint8_t>(yv)});
      EXPECT_EQ(out[0], xv ^ yv);
      EXPECT_EQ(out[1], xv & yv);
      EXPECT_EQ(out[2], xv | yv);
      EXPECT_EQ(out[3], xv ^ 1);
      EXPECT_EQ(out[4], xv ? yv : 0);
    }
  }
}

TEST(BuilderTest, ConstantFoldingEliminatesGates) {
  Builder b;
  Wire x = b.Input();
  // All of these must fold without emitting gates.
  EXPECT_EQ(b.Xor(x, b.Zero()), x);
  EXPECT_EQ(b.And(x, b.One()), x);
  EXPECT_EQ(b.And(x, b.Zero()), b.Zero());
  EXPECT_EQ(b.Xor(x, x), b.Zero());
  EXPECT_EQ(b.And(x, x), x);
  EXPECT_EQ(b.Not(b.Not(x)), x);
  EXPECT_EQ(b.num_and_gates(), 0u);
}

TEST(BuilderTest, AndCountTracksEmittedGates) {
  Builder b;
  Wire x = b.Input();
  Wire y = b.Input();
  b.Output(b.And(x, y));
  b.Output(b.Or(x, y));   // 1 AND
  b.Output(b.Mux(x, y, b.Input()));  // 1 AND
  EXPECT_EQ(b.num_and_gates(), 3u);
}

struct WordOpCase {
  int bits;
  uint64_t a;
  uint64_t b;
};

class WordOpTest : public ::testing::TestWithParam<WordOpCase> {};

TEST_P(WordOpTest, AddSubMatchNative) {
  auto [bits, av, bv] = GetParam();
  uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  Builder b;
  Word x = b.InputWord(bits);
  Word y = b.InputWord(bits);
  b.OutputWord(b.Add(x, y));
  b.OutputWord(b.Sub(x, y));
  b.Output(b.Ult(x, y));
  b.Output(b.Eq(x, y));
  Circuit c = b.Build();
  auto out = EvalWords(c, {av, bv}, {bits, bits}, {bits, bits, 1, 1});
  EXPECT_EQ(out[0], (av + bv) & mask);
  EXPECT_EQ(out[1], (av - bv) & mask);
  EXPECT_EQ(out[2], (av & mask) < (bv & mask) ? 1u : 0u);
  EXPECT_EQ(out[3], (av & mask) == (bv & mask) ? 1u : 0u);
}

TEST_P(WordOpTest, MulMatchesNative) {
  auto [bits, av, bv] = GetParam();
  uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  Builder b;
  Word x = b.InputWord(bits);
  Word y = b.InputWord(bits);
  b.OutputWord(b.Mul(x, y));
  Circuit c = b.Build();
  auto out = EvalWords(c, {av, bv}, {bits, bits}, {bits});
  EXPECT_EQ(out[0], (av * bv) & mask);
}

TEST_P(WordOpTest, DivModMatchNative) {
  auto [bits, av, bv] = GetParam();
  uint64_t mask = bits == 64 ? ~0ULL : (1ULL << bits) - 1;
  uint64_t a = av & mask;
  uint64_t d = bv & mask;
  Builder b;
  Word x = b.InputWord(bits);
  Word y = b.InputWord(bits);
  Word q, r;
  b.DivMod(x, y, &q, &r);
  b.OutputWord(q);
  b.OutputWord(r);
  Circuit c = b.Build();
  auto out = EvalWords(c, {a, d}, {bits, bits}, {bits, bits});
  if (d == 0) {
    EXPECT_EQ(out[0], mask);  // documented saturation
    EXPECT_EQ(out[1], a);
  } else {
    EXPECT_EQ(out[0], a / d);
    EXPECT_EQ(out[1], a % d);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WordOpTest,
    ::testing::Values(WordOpCase{8, 0, 0}, WordOpCase{8, 255, 1}, WordOpCase{8, 171, 205},
                      WordOpCase{8, 17, 0}, WordOpCase{12, 4095, 4095}, WordOpCase{12, 1234, 56},
                      WordOpCase{16, 65535, 2}, WordOpCase{16, 40000, 39999},
                      WordOpCase{16, 12345, 0}, WordOpCase{24, 1 << 20, 3},
                      WordOpCase{32, 0xDEADBEEF, 0x12345678}, WordOpCase{32, 5, 100000}));

TEST(BuilderTest, RandomizedArithmeticSweep) {
  Rng rng(99);
  for (int trial = 0; trial < 50; trial++) {
    int bits = static_cast<int>(rng.Range(4, 20));
    uint64_t mask = (1ULL << bits) - 1;
    uint64_t a = rng.Next() & mask;
    uint64_t d = rng.Next() & mask;
    Builder b;
    Word x = b.InputWord(bits);
    Word y = b.InputWord(bits);
    b.OutputWord(b.Add(b.Mul(x, y), x));
    Circuit c = b.Build();
    auto out = EvalWords(c, {a, d}, {bits, bits}, {bits});
    EXPECT_EQ(out[0], (a * d + a) & mask) << "bits=" << bits << " a=" << a << " d=" << d;
  }
}

TEST(BuilderTest, SltMatchesSignedComparison) {
  Builder b;
  Word x = b.InputWord(8);
  Word y = b.InputWord(8);
  b.Output(b.Slt(x, y));
  Circuit c = b.Build();
  for (int a : {-128, -100, -1, 0, 1, 100, 127}) {
    for (int d : {-128, -5, 0, 5, 127}) {
      auto out = EvalWords(c, {static_cast<uint64_t>(a) & 0xFF, static_cast<uint64_t>(d) & 0xFF},
                           {8, 8}, {1});
      EXPECT_EQ(out[0], a < d ? 1u : 0u) << a << " < " << d;
    }
  }
}

TEST(BuilderTest, DivFixedComputesScaledRatio) {
  constexpr int kBits = 12;
  constexpr int kFrac = 6;
  Builder b;
  Word x = b.InputWord(kBits);
  Word y = b.InputWord(kBits);
  b.OutputWord(b.DivFixed(x, y, kFrac));
  Circuit c = b.Build();
  for (auto [a, d] : std::vector<std::pair<uint64_t, uint64_t>>{
           {100, 200}, {200, 100}, {1, 4095}, {4095, 1}, {63, 64}, {64, 64}}) {
    auto out = EvalWords(c, {a, d}, {kBits, kBits}, {kBits});
    uint64_t expected = (a << kFrac) / d;
    uint64_t mask = (1ULL << kBits) - 1;
    if (expected > mask) {
      expected = mask;  // saturation
    }
    EXPECT_EQ(out[0], expected) << a << "/" << d;
  }
}

TEST(BuilderTest, ShiftAndExtendOps) {
  Builder b;
  Word x = b.InputWord(8);
  b.OutputWord(b.ShiftLeftConst(x, 3));
  b.OutputWord(b.ShiftRightConst(x, 2));
  b.OutputWord(b.ZeroExtend(x, 12));
  b.OutputWord(b.SignExtend(x, 12));
  b.OutputWord(b.ClampMax(x, b.ConstWord(100, 8)));
  Circuit c = b.Build();
  auto out = EvalWords(c, {0xB5}, {8}, {8, 8, 12, 12, 8});
  EXPECT_EQ(out[0], (0xB5u << 3) & 0xFF);
  EXPECT_EQ(out[1], 0xB5u >> 2);
  EXPECT_EQ(out[2], 0xB5u);
  EXPECT_EQ(out[3], 0xFB5u);  // sign-extended (0xB5 has MSB set)
  EXPECT_EQ(out[4], 100u);
}

TEST(CircuitTest, StatsAndLayers) {
  Builder b;
  Word x = b.InputWord(8);
  Word y = b.InputWord(8);
  b.OutputWord(b.Mul(b.Add(x, y), y));
  Circuit c = b.Build();
  const auto& stats = c.stats();
  EXPECT_EQ(stats.num_inputs, 16u);
  EXPECT_GT(stats.num_and, 0u);
  EXPECT_GT(stats.and_depth, 0u);
  // Every AND gate appears in exactly one layer; layer depths are exact.
  size_t layered = 0;
  for (size_t r = 0; r < c.and_layers().size(); r++) {
    for (Wire w : c.and_layers()[r]) {
      EXPECT_EQ(c.gates()[w].op, GateOp::kAnd);
      EXPECT_EQ(c.and_depth()[w], r);
      layered++;
    }
  }
  EXPECT_EQ(layered, stats.num_and);
}

TEST(CircuitTest, EvalIsDeterministic) {
  Builder b;
  Word x = b.InputWord(16);
  Word q, r;
  b.DivMod(x, b.ConstWord(7, 16), &q, &r);
  b.OutputWord(q);
  Circuit c = b.Build();
  BitVector in = WordToBits(10000, 16);
  EXPECT_EQ(c.Eval(in), c.Eval(in));
  EXPECT_EQ(BitsToWord(c.Eval(in), 0, 16), 10000u / 7u);
}

TEST(CircuitTest, OneAndPerBitAdder) {
  // The 1-AND full adder: adding two n-bit words costs at most n-1 ANDs.
  for (int bits : {4, 8, 16, 32}) {
    Builder b;
    Word x = b.InputWord(bits);
    Word y = b.InputWord(bits);
    b.OutputWord(b.Add(x, y));
    Circuit c = b.Build();
    EXPECT_LE(c.stats().num_and, static_cast<size_t>(bits - 1)) << bits;
  }
}

}  // namespace
}  // namespace dstress::circuit
