// TcpNetwork conformance: the transport_test.cc semantics (per-session
// FIFO, batch == loop equivalence, exact metering, observer order) must
// hold when every message crosses real sockets through per-bank processes,
// and per-node traffic stats must be bit-identical to SimNetwork for the
// same traffic script. Everything is constructed through the registry
// (MakeTransport), never by type name.
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <thread>

#include "src/net/transport.h"
#include "src/net/transport_spec.h"

namespace dstress::net {
namespace {

std::unique_ptr<Transport> MakeTcp(int num_nodes) {
  return MakeTransport(TcpTransportSpec(), num_nodes);
}

TEST(TcpNetworkTest, FifoPerSessionThroughBasePointer) {
  auto net = MakeTcp(2);
  for (uint8_t i = 0; i < 10; i++) {
    net->Send(0, 1, Bytes{i}, /*session=*/7);
  }
  for (uint8_t i = 0; i < 10; i++) {
    EXPECT_EQ(net->Recv(1, 0, /*session=*/7), Bytes{i});
  }
}

TEST(TcpNetworkTest, SessionsAndDirectionsAreIsolated) {
  auto net = MakeTcp(2);
  net->Send(0, 1, Bytes{1}, 100);
  net->Send(0, 1, Bytes{2}, 200);
  net->Send(1, 0, Bytes{3}, 100);
  EXPECT_EQ(net->Recv(1, 0, 200), Bytes{2});
  EXPECT_EQ(net->Recv(1, 0, 100), Bytes{1});
  EXPECT_EQ(net->Recv(0, 1, 100), Bytes{3});
}

TEST(TcpNetworkTest, SelfSendLoopsThroughOwnBankProcess) {
  auto net = MakeTcp(2);
  net->Send(1, 1, Bytes{0x55}, 9);
  EXPECT_EQ(net->Recv(1, 1, 9), Bytes{0x55});
  TrafficStats s = net->NodeStats(1);
  EXPECT_EQ(s.messages_sent, 1u);
  EXPECT_EQ(s.messages_received, 1u);
}

TEST(TcpNetworkTest, SendBatchPreservesFifoBoundariesAndMetering) {
  auto net = MakeTcp(2);
  net->Send(0, 1, Bytes{0});
  net->SendBatch(0, 1, {Bytes{1}, Bytes{2, 2}, Bytes{3}});
  net->Send(0, 1, Bytes{4});

  EXPECT_EQ(net->Recv(1, 0), Bytes{0});
  EXPECT_EQ(net->Recv(1, 0), Bytes{1});
  EXPECT_EQ(net->Recv(1, 0), (Bytes{2, 2}));
  EXPECT_EQ(net->Recv(1, 0), Bytes{3});
  EXPECT_EQ(net->Recv(1, 0), Bytes{4});

  // Metering is identical to five individual Sends — payload bytes only,
  // wire framing excluded.
  TrafficStats s = net->NodeStats(0);
  EXPECT_EQ(s.messages_sent, 5u);
  EXPECT_EQ(s.bytes_sent, 6u);
  EXPECT_EQ(net->NodeStats(1).messages_received, 5u);
  EXPECT_EQ(net->NodeStats(1).bytes_received, 6u);
}

TEST(TcpNetworkTest, SendBatchWakesBlockedReceiver) {
  auto net = MakeTcp(2);
  Bytes first, second;
  std::thread receiver([&] {
    first = net->Recv(1, 0);
    second = net->Recv(1, 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net->SendBatch(0, 1, {Bytes{8}, Bytes{9}});
  receiver.join();
  EXPECT_EQ(first, Bytes{8});
  EXPECT_EQ(second, Bytes{9});
}

class OrderRecorder : public NetworkObserver {
 public:
  void OnSend(NodeId, NodeId, SessionId, const Bytes& payload) override {
    sends.push_back(payload);
  }
  void OnRecv(NodeId, NodeId, SessionId, const Bytes& payload) override {
    recvs.push_back(payload);
  }
  std::vector<Bytes> sends;
  std::vector<Bytes> recvs;
};

TEST(TcpNetworkTest, ObserverSeesBatchedMessagesInFifoOrder) {
  auto net = MakeTcp(2);
  OrderRecorder recorder;
  net->SetObserver(&recorder);

  net->SendBatch(0, 1, {Bytes{1}, Bytes{2}});
  net->Send(0, 1, Bytes{3});
  for (int i = 0; i < 3; i++) {
    net->Recv(1, 0);
  }

  std::vector<Bytes> expected = {Bytes{1}, Bytes{2}, Bytes{3}};
  EXPECT_EQ(recorder.sends, expected);
  EXPECT_EQ(recorder.recvs, expected);
}

// Drives the same deterministic traffic script over SimNetwork and
// TcpNetwork and expects every per-node counter to match bit for bit — the
// invariant that keeps the paper's traffic figures backend-independent.
TEST(TcpNetworkTest, TrafficStatsBitIdenticalToSimNetwork) {
  constexpr int kNodes = 3;
  auto run_script = [](Transport* net) {
    uint64_t rng = 99;
    for (int step = 0; step < 200; step++) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      int from = static_cast<int>((rng >> 33) % kNodes);
      int to = static_cast<int>((rng >> 43) % kNodes);
      SessionId session = (rng >> 53) % 4;
      size_t len = 1 + static_cast<size_t>((rng >> 21) % 64);
      if (step % 5 == 0) {
        net->SendBatch(from, to, {Bytes(len, 0xab), Bytes(len / 2, 0xcd)}, session);
      } else {
        net->Send(from, to, Bytes(len, 0xee), session);
      }
    }
    // Drain everything so received-side counters are complete.
    rng = 99;
    for (int step = 0; step < 200; step++) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      int from = static_cast<int>((rng >> 33) % kNodes);
      int to = static_cast<int>((rng >> 43) % kNodes);
      SessionId session = (rng >> 53) % 4;
      int count = step % 5 == 0 ? 2 : 1;
      for (int i = 0; i < count; i++) {
        net->Recv(to, from, session);
      }
    }
  };

  auto sim = MakeTransport(SimTransportSpec(), kNodes);
  auto tcp = MakeTcp(kNodes);
  run_script(sim.get());
  run_script(tcp.get());

  EXPECT_EQ(sim->TotalBytes(), tcp->TotalBytes());
  EXPECT_EQ(sim->MaxBytesPerNode(), tcp->MaxBytesPerNode());
  for (int v = 0; v < kNodes; v++) {
    TrafficStats a = sim->NodeStats(v);
    TrafficStats b = tcp->NodeStats(v);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "node " << v;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "node " << v;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "node " << v;
    EXPECT_EQ(a.messages_received, b.messages_received) << "node " << v;
  }
}

// The real deployment shape: bank processes spawned as separate
// dstress_node binaries (exec, not fork). Skipped when the example binary
// is not present (e.g. running the test outside the build tree).
TEST(TcpNetworkTest, NodeProgramSpawnModeRelaysTraffic) {
  const char* candidates[] = {"../examples/dstress_node", "examples/dstress_node"};
  std::string program;
  for (const char* path : candidates) {
    if (access(path, X_OK) == 0) {
      program = path;
      break;
    }
  }
  if (program.empty()) {
    GTEST_SKIP() << "dstress_node binary not found";
  }
  TransportSpec spec = TcpTransportSpec();
  spec.node_program = program;
  auto net = MakeTransport(spec, 3);
  net->SendBatch(0, 2, {Bytes{1}, Bytes{2}}, 5);
  net->Send(2, 0, Bytes{3}, 5);
  EXPECT_EQ(net->Recv(2, 0, 5), Bytes{1});
  EXPECT_EQ(net->Recv(2, 0, 5), Bytes{2});
  EXPECT_EQ(net->Recv(0, 2, 5), Bytes{3});
  EXPECT_EQ(net->NodeStats(0).bytes_sent, 2u);
  EXPECT_EQ(net->NodeStats(2).bytes_received, 2u);
}

}  // namespace
}  // namespace dstress::net
