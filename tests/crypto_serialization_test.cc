// Wire-format round-trips and malformed-input rejection across the crypto
// stack: everything that crosses the SimNetwork must survive
// serialize/deserialize unchanged, and decoders must reject garbage rather
// than produce off-curve points.
#include <gtest/gtest.h>

#include <cstring>

#include "src/crypto/chacha20.h"
#include "src/crypto/ec.h"
#include "src/crypto/elgamal.h"
#include "src/crypto/u256.h"

namespace dstress::crypto {
namespace {

TEST(EcPointSerializationTest, CompressDecompressRoundTripsRandomPoints) {
  auto prg = ChaCha20Prg::FromSeed(1);
  for (int trial = 0; trial < 50; trial++) {
    EcPoint p = MulBase(prg.NextScalar(CurveOrder()));
    auto raw = p.Compress();
    auto q = EcPoint::Decompress(raw.data());
    ASSERT_TRUE(q.has_value()) << "trial " << trial;
    EXPECT_EQ(*q, p);
  }
}

TEST(EcPointSerializationTest, BatchCompressionMatchesIndividual) {
  auto prg = ChaCha20Prg::FromSeed(2);
  constexpr size_t kCount = 17;
  std::vector<EcPoint> points;
  for (size_t i = 0; i < kCount; i++) {
    points.push_back(MulBase(prg.NextScalar(CurveOrder())));
  }
  std::vector<uint8_t> batch(kCount * EcPoint::kCompressedSize);
  EcPoint::CompressBatch(points.data(), kCount, batch.data());
  for (size_t i = 0; i < kCount; i++) {
    auto individual = points[i].Compress();
    EXPECT_EQ(0, std::memcmp(batch.data() + i * EcPoint::kCompressedSize, individual.data(),
                             EcPoint::kCompressedSize))
        << "point " << i;
  }
}

TEST(EcPointSerializationTest, RejectsInvalidPrefixAndOffCurveX) {
  auto prg = ChaCha20Prg::FromSeed(3);
  EcPoint p = MulBase(prg.NextScalar(CurveOrder()));
  auto raw = p.Compress();

  auto bad_prefix = raw;
  bad_prefix[0] = 0x05;  // only 0x02/0x03 are valid compressed prefixes
  EXPECT_FALSE(EcPoint::Decompress(bad_prefix.data()).has_value());

  // An x with no curve point: flip bytes until decompression fails (about
  // half of all x values are non-residues, so this terminates immediately
  // for some flip).
  bool rejected = false;
  for (int flip = 1; flip <= 32 && !rejected; flip++) {
    auto bad_x = raw;
    bad_x[flip] ^= 0xff;
    if (!EcPoint::Decompress(bad_x.data()).has_value()) {
      rejected = true;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(ElGamalSerializationTest, PublicKeyRoundTrips) {
  auto prg = ChaCha20Prg::FromSeed(4);
  for (int trial = 0; trial < 10; trial++) {
    ElGamalKeyPair kp = ElGamalKeyGen(prg);
    Bytes raw = kp.pub.Serialize();
    ElGamalPublicKey back = ElGamalPublicKey::Deserialize(raw);
    EXPECT_EQ(back.point, kp.pub.point);
  }
}

TEST(ElGamalSerializationTest, CiphertextRoundTripsAndDecrypts) {
  auto prg = ChaCha20Prg::FromSeed(5);
  ElGamalKeyPair kp = ElGamalKeyGen(prg);
  DlogTable table(64);
  for (int64_t m : {-50L, -1L, 0L, 1L, 63L}) {
    ElGamalCiphertext ct = ElGamalEncrypt(kp.pub, m, prg);
    Bytes raw = ct.Serialize();
    EXPECT_EQ(raw.size(), ElGamalCiphertext::kSerializedSize);
    ElGamalCiphertext back = ElGamalCiphertext::Deserialize(raw);
    int64_t out = 0;
    ASSERT_TRUE(table.Decrypt(kp.secret, back, &out)) << m;
    EXPECT_EQ(out, m);
  }
}

TEST(U256SerializationTest, HexAndBytesRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(6);
  for (int trial = 0; trial < 50; trial++) {
    U256 v = prg.NextU256();
    EXPECT_EQ(U256::FromHex(v.ToHex()), v);
    uint8_t raw[32];
    v.ToBytesBe(raw);
    EXPECT_EQ(U256::FromBytesBe(raw), v);
  }
}

TEST(U256SerializationTest, HexIsBigEndianAndPadded) {
  U256 v(0x1234);
  std::string hex = v.ToHex();
  ASSERT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.substr(60), "1234");
  EXPECT_EQ(hex.substr(0, 60), std::string(60, '0'));
}

TEST(DlogTableTest, BoundaryValuesResolve) {
  DlogTable table(32);
  for (int64_t m : {-32L, -31L, 0L, 31L, 32L}) {
    int64_t out = 0;
    EXPECT_TRUE(table.Lookup(MulBase(EncodeExponent(m)), &out)) << m;
    EXPECT_EQ(out, m);
  }
  int64_t out = 0;
  EXPECT_FALSE(table.Lookup(MulBase(EncodeExponent(33)), &out));
  EXPECT_FALSE(table.Lookup(MulBase(EncodeExponent(-33)), &out));
}

}  // namespace
}  // namespace dstress::crypto
