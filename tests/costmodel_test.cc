#include "src/costmodel/cost_model.h"

#include <gtest/gtest.h>

#include "src/core/vertex_program.h"
#include "src/finance/eisenberg_noe.h"

namespace dstress::costmodel {
namespace {

MicroCosts FakeCosts() {
  MicroCosts costs;
  costs.seconds_per_and = 1e-6;
  costs.bytes_per_and = 2.0;
  costs.seconds_bundle_encrypt = 5e-3;
  costs.seconds_source_endpoint = 2e-3;
  costs.seconds_dest_adjust = 1e-4;
  costs.seconds_column_decrypt = 1e-3;
  costs.calibrated_block_size = 8;
  costs.calibrated_message_bits = 12;
  return costs;
}

ProjectionParams BaseParams() {
  ProjectionParams p;
  p.num_nodes = 500;
  p.degree_bound = 10;
  p.block_size = 8;
  p.iterations = 9;
  p.message_bits = 12;
  p.update_and_gates = 5000;
  p.aggregate_and_gates_per_group = 8000;
  p.combine_and_gates = 2000;
  p.state_bits = 400;
  return p;
}

TEST(CostModelTest, CalibrationProducesPositiveCosts) {
  MicroCosts costs = Calibrate(/*block_size=*/3, /*message_bits=*/6);
  EXPECT_GT(costs.seconds_per_and, 0.0);
  EXPECT_GT(costs.bytes_per_and, 0.0);
  EXPECT_GT(costs.seconds_bundle_encrypt, 0.0);
  EXPECT_GT(costs.seconds_source_endpoint, 0.0);
  EXPECT_GT(costs.seconds_dest_adjust, 0.0);
  EXPECT_GT(costs.seconds_column_decrypt, 0.0);
  EXPECT_FALSE(costs.ToString().empty());
  // GMW per-AND traffic per member: 2 bits to each of k peers = 2(k+1-1)/8
  // bytes plus framing; must be within an order of magnitude of that.
  double analytic = 2.0 * (3 - 1) / 8.0;
  EXPECT_GT(costs.bytes_per_and, 0.3 * analytic);
  EXPECT_LT(costs.bytes_per_and, 30 * analytic);
}

TEST(CostModelTest, ProjectionMonotoneInDegree) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  double prev = 0;
  for (int d : {10, 40, 70, 100}) {
    p.degree_bound = d;
    Projection proj = Project(costs, p);
    EXPECT_GT(proj.total_seconds, prev);
    prev = proj.total_seconds;
  }
}

TEST(CostModelTest, ProjectionMonotoneInIterations) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  p.iterations = 5;
  double t5 = Project(costs, p).total_seconds;
  p.iterations = 11;
  double t11 = Project(costs, p).total_seconds;
  EXPECT_GT(t11, t5);
}

TEST(CostModelTest, ProjectionMonotoneInBlockSize) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  p.block_size = 8;
  Projection small = Project(costs, p);
  p.block_size = 20;
  Projection large = Project(costs, p);
  EXPECT_GT(large.total_seconds, small.total_seconds);
  EXPECT_GT(large.traffic_bytes_per_node, small.traffic_bytes_per_node);
}

TEST(CostModelTest, CommunicationDominatedByBundles) {
  // With D = 100 and k+1 = 20, per-node communicate time is dominated by
  // the k+1 * D bundle encryptions (the paper's per-node bottleneck).
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  p.block_size = 20;
  p.degree_bound = 100;
  Projection proj = Project(costs, p);
  double bundles_only = p.iterations * 20.0 * 100 * costs.seconds_bundle_encrypt;
  EXPECT_GT(proj.communicate_seconds, bundles_only);
  EXPECT_LT(proj.communicate_seconds, 2.0 * bundles_only);
}

TEST(CostModelTest, TrafficFormulaTracksWireSizes) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  Projection proj = Project(costs, p);
  // Communicate traffic per node and iteration: (k+1+1) bundles out plus
  // k+1 columns per in-edge.
  double bundle = (1 + 8.0 * 12) * 33;
  double column = (1 + 12.0) * 33;
  double per_iter = 8 * 10 * bundle + 10 * bundle + 10 * 8 * column;
  double communicate = p.iterations * per_iter;
  EXPECT_GT(proj.traffic_bytes_per_node, communicate);  // plus GMW traffic
  EXPECT_LT(proj.traffic_bytes_per_node,
            communicate + (p.iterations + 1) * p.block_size * 5000 * 2.0 + 8 * 50 + 1e5);
}

TEST(CostModelTest, RealCircuitCountsPlugIn) {
  // The projection accepts AND counts straight from the EN program builder.
  finance::EnProgramParams en;
  en.degree_bound = 10;
  en.iterations = 7;
  auto program = finance::MakeEnProgram(en);
  auto update = core::BuildUpdateCircuit(program);
  auto agg = core::BuildAggregateCircuit(program, 100, false);
  auto combine = core::BuildCombineCircuit(program, 5, true);

  ProjectionParams p = BaseParams();
  p.update_and_gates = update.stats().num_and;
  p.aggregate_and_gates_per_group = agg.stats().num_and;
  p.combine_and_gates = combine.stats().num_and;
  p.state_bits = program.state_bits;
  Projection proj = Project(FakeCosts(), p);
  EXPECT_GT(proj.total_seconds, 0.0);
  EXPECT_GT(proj.traffic_bytes_per_node, 0.0);
}

TEST(WanModelTest, ZeroLatencyAndInfiniteUplinkMatchesBase) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  p.update_and_depth = 40;
  p.aggregate_and_depth = 30;
  p.combine_and_depth = 20;
  WanParams wan;
  wan.rtt_ms = 0;
  wan.bandwidth_mbps = 1e12;
  Projection base = Project(costs, p);
  Projection over_wan = ProjectWan(costs, p, wan);
  EXPECT_NEAR(over_wan.total_seconds, base.total_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(over_wan.traffic_bytes_per_node, base.traffic_bytes_per_node);
}

TEST(WanModelTest, LatencyTermScalesWithRttAndDepth) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  p.update_and_depth = 40;
  WanParams slow;
  slow.rtt_ms = 50;
  WanParams fast;
  fast.rtt_ms = 10;
  double extra_slow = ProjectWan(costs, p, slow).total_seconds - Project(costs, p).total_seconds;
  double extra_fast = ProjectWan(costs, p, fast).total_seconds - Project(costs, p).total_seconds;
  EXPECT_GT(extra_slow, extra_fast);
  // The compute latency term alone: (I+1) * (k+1) * depth * rtt.
  double compute_latency = (p.iterations + 1) * p.block_size * 40.0 * 0.05;
  EXPECT_GE(extra_slow, compute_latency);

  // Doubling the depth at fixed RTT grows the WAN penalty.
  p.update_and_depth = 80;
  double extra_deeper =
      ProjectWan(costs, p, slow).total_seconds - Project(costs, p).total_seconds;
  EXPECT_GT(extra_deeper, extra_slow);
}

TEST(WanModelTest, BandwidthTermScalesInversely) {
  MicroCosts costs = FakeCosts();
  ProjectionParams p = BaseParams();
  WanParams narrow;
  narrow.rtt_ms = 0;
  narrow.bandwidth_mbps = 10;
  WanParams wide;
  wide.rtt_ms = 0;
  wide.bandwidth_mbps = 1000;
  Projection base = Project(costs, p);
  double narrow_extra = ProjectWan(costs, p, narrow).total_seconds - base.total_seconds;
  double wide_extra = ProjectWan(costs, p, wide).total_seconds - base.total_seconds;
  EXPECT_NEAR(narrow_extra, 100 * wide_extra, narrow_extra * 0.01);
  EXPECT_NEAR(narrow_extra, base.traffic_bytes_per_node / (10e6 / 8), narrow_extra * 0.01);
}

}  // namespace
}  // namespace dstress::costmodel
