#include "src/crypto/u256.h"

#include <gtest/gtest.h>

#include "src/crypto/chacha20.h"

namespace dstress::crypto {
namespace {

TEST(U256Test, ZeroAndOne) {
  EXPECT_TRUE(U256::Zero().IsZero());
  EXPECT_FALSE(U256::One().IsZero());
  EXPECT_TRUE(U256::One().IsOdd());
  EXPECT_EQ(U256::One().BitLength(), 0);
  EXPECT_EQ(U256::Zero().BitLength(), -1);
}

TEST(U256Test, HexRoundTrip) {
  const std::string hex = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef";
  U256 v = U256::FromHex(hex);
  EXPECT_EQ(v.ToHex(), hex);
}

TEST(U256Test, ShortHexIsLeftPadded) {
  U256 v = U256::FromHex("ff");
  EXPECT_EQ(v, U256(255));
}

TEST(U256Test, BytesRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(1);
  for (int i = 0; i < 50; i++) {
    U256 v = prg.NextU256();
    uint8_t buf[32];
    v.ToBytesBe(buf);
    EXPECT_EQ(U256::FromBytesBe(buf), v);
  }
}

TEST(U256Test, AddSubInverse) {
  auto prg = ChaCha20Prg::FromSeed(2);
  for (int i = 0; i < 100; i++) {
    U256 a = prg.NextU256();
    U256 b = prg.NextU256();
    U256 sum;
    uint64_t carry = AddWithCarry(a, b, &sum);
    U256 back;
    uint64_t borrow = SubWithBorrow(sum, b, &back);
    // (a + b) - b == a, and the borrow mirrors the carry.
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);
  }
}

TEST(U256Test, AdditionCommutes) {
  auto prg = ChaCha20Prg::FromSeed(3);
  for (int i = 0; i < 100; i++) {
    U256 a = prg.NextU256();
    U256 b = prg.NextU256();
    U256 ab, ba;
    AddWithCarry(a, b, &ab);
    AddWithCarry(b, a, &ba);
    EXPECT_EQ(ab, ba);
  }
}

TEST(U256Test, CarryPropagation) {
  U256 max(~0ULL, ~0ULL, ~0ULL, ~0ULL);
  U256 out;
  EXPECT_EQ(AddWithCarry(max, U256::One(), &out), 1u);
  EXPECT_TRUE(out.IsZero());
  EXPECT_EQ(SubWithBorrow(U256::Zero(), U256::One(), &out), 1u);
  EXPECT_EQ(out, max);
}

TEST(U256Test, CmpOrdersValues) {
  EXPECT_EQ(Cmp(U256(1), U256(2)), -1);
  EXPECT_EQ(Cmp(U256(2), U256(1)), 1);
  EXPECT_EQ(Cmp(U256(7), U256(7)), 0);
  U256 high(0, 0, 0, 1);
  U256 low(~0ULL, ~0ULL, ~0ULL, 0);
  EXPECT_EQ(Cmp(high, low), 1);
}

TEST(U256Test, MulFullMatchesSmallProducts) {
  U512 p = MulFull(U256(0xFFFFFFFFULL), U256(0xFFFFFFFFULL));
  EXPECT_EQ(p.w[0], 0xFFFFFFFE00000001ULL);
  for (int i = 1; i < 8; i++) {
    EXPECT_EQ(p.w[i], 0u);
  }
}

TEST(U256Test, MulFullCrossLimb) {
  // (2^64) * (2^64) = 2^128.
  U256 a(0, 1, 0, 0);
  U512 p = MulFull(a, a);
  EXPECT_EQ(p.w[2], 1u);
  EXPECT_EQ(p.w[0], 0u);
  EXPECT_EQ(p.w[1], 0u);
}

TEST(U256Test, ShiftsInverse) {
  auto prg = ChaCha20Prg::FromSeed(4);
  for (int shift : {1, 7, 63, 64, 65, 128, 200, 255}) {
    U256 v = prg.NextU256();
    // Clear top bits so the left shift is lossless.
    U256 masked = Shr(Shl(v, shift), shift);
    EXPECT_EQ(Shr(Shl(masked, shift), shift), masked) << "shift=" << shift;
  }
}

TEST(U256Test, ShiftZeroIsIdentity) {
  U256 v = U256::FromHex("deadbeef");
  EXPECT_EQ(Shl(v, 0), v);
  EXPECT_EQ(Shr(v, 0), v);
}

TEST(U256Test, Mod512SmallCases) {
  U512 p = MulFull(U256(100), U256(100));
  EXPECT_EQ(Mod512(p, U256(7)), U256(10000 % 7));
  EXPECT_EQ(Mod512(p, U256(10001)), U256(10000));
}

TEST(U256Test, ModMulMatchesNative) {
  auto prg = ChaCha20Prg::FromSeed(5);
  for (int i = 0; i < 200; i++) {
    uint64_t a = prg.NextU64() >> 33;
    uint64_t b = prg.NextU64() >> 33;
    uint64_t m = (prg.NextU64() >> 40) + 2;
    EXPECT_EQ(ModMul(U256(a), U256(b), U256(m)), U256((a * b) % m));
  }
}

TEST(U256Test, ModPowFermat) {
  // 2^(p-1) = 1 mod p for prime p.
  U256 p(1000003);
  U256 exp(1000002);
  EXPECT_EQ(ModPow(U256(2), exp, p), U256::One());
}

TEST(U256Test, ModInvRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(6);
  U256 m = U256::FromHex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
  for (int i = 0; i < 50; i++) {
    U256 a = prg.NextScalar(m);
    U256 inv = ModInv(a, m);
    EXPECT_EQ(ModMul(a, inv, m), U256::One());
  }
}

TEST(U256Test, ModInvOfOne) {
  EXPECT_EQ(ModInv(U256::One(), U256(101)), U256::One());
}

class U256BitParamTest : public ::testing::TestWithParam<int> {};

TEST_P(U256BitParamTest, BitAccessMatchesShift) {
  int bit = GetParam();
  U256 v = Shl(U256::One(), bit);
  EXPECT_TRUE(v.Bit(bit));
  EXPECT_EQ(v.BitLength(), bit);
  for (int other : {0, 1, 100, 255}) {
    if (other != bit) {
      EXPECT_FALSE(v.Bit(other));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, U256BitParamTest,
                         ::testing::Values(0, 1, 31, 32, 63, 64, 127, 128, 191, 192, 255));

}  // namespace
}  // namespace dstress::crypto
