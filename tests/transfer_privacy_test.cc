// Adversary-perspective properties of the §3.5 transfer protocol: what a
// k-collusion actually sees, and why each strawman-fixing mechanism is
// present. Complements transfer_test.cc (correctness and wire formats).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <string>

#include "src/dp/samplers.h"
#include "src/mpc/sharing.h"
#include "src/transfer/transfer.h"

namespace dstress::transfer {
namespace {

// Any k of the k+1 shares of a fixed message are uniformly distributed:
// the missing share decorrelates the collusion's view from the secret.
TEST(CollusionViewTest, KSharesOfFixedMessageAreUnbiased) {
  constexpr int kBlock = 4;
  constexpr int kTrials = 2000;
  auto prg = crypto::ChaCha20Prg::FromSeed(7);
  const mpc::BitVector message = {1, 0, 1, 1};  // fixed secret

  // XOR of the first k shares, per bit, across fresh sharings.
  std::vector<int> ones(message.size(), 0);
  for (int t = 0; t < kTrials; t++) {
    auto shares = mpc::ShareBits(message, kBlock, prg);
    for (size_t b = 0; b < message.size(); b++) {
      uint8_t view = 0;
      for (int m = 0; m < kBlock - 1; m++) {  // the collusion misses share k
        view ^= shares[m][b];
      }
      ones[b] += view;
    }
  }
  for (size_t b = 0; b < message.size(); b++) {
    EXPECT_GT(ones[b], kTrials / 2 - 150) << "bit " << b;
    EXPECT_LT(ones[b], kTrials / 2 + 150) << "bit " << b;
  }
}

// Strawman #2's fix: even if one member of B_i and one of B_j collude, the
// subshare split means their joint view misses the honest-to-honest
// subshare and stays independent of the message.
TEST(CollusionViewTest, CrossBlockPairMissesHonestSubshare) {
  constexpr int kBlock = 3;
  constexpr int kTrials = 1500;
  auto prg = crypto::ChaCha20Prg::FromSeed(8);

  int view_ones = 0;
  for (int t = 0; t < kTrials; t++) {
    uint8_t secret_bit = static_cast<uint8_t>(t & 1);
    // Member x of B_i splits its share bit into kBlock subshares, one per
    // member of B_j (mirroring EncryptSubshares's split).
    mpc::BitVector share = {secret_bit};
    auto subshares = mpc::ShareBits(share, kBlock, prg);
    // Corrupt receiver 0 sees subshare 0 only; XOR with anything it knows
    // (here: nothing else) is still unbiased because subshares 1..k are
    // missing.
    view_ones += subshares[0][0];
  }
  EXPECT_GT(view_ones, kTrials / 2 - 130);
  EXPECT_LT(view_ones, kTrials / 2 + 130);
}

// Strawman #3's fix: the recipients obtain only noised SUMS, never the
// original subshares, so colluding endpoints cannot recognize forwarded
// values. Here: two encryptions of the same share under the same
// certificate produce disjoint ciphertext points (fresh ephemerals).
TEST(UnlinkabilityTest, RepeatedEncryptionsShareNoPoints) {
  auto prg = crypto::ChaCha20Prg::FromSeed(9);
  constexpr int kBlock = 3;
  constexpr int kBits = 4;
  BlockKeys keys = TransferSetup(kBlock, kBits, prg);
  crypto::U256 r = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys), r);

  mpc::BitVector share = {1, 0, 0, 1};
  SubshareBundle a = EncryptSubshares(share, cert, prg);
  SubshareBundle b = EncryptSubshares(share, cert, prg);

  std::set<std::string> seen;
  auto insert_all = [&seen](const SubshareBundle& bundle) {
    auto c = bundle.c1.Compress();
    seen.insert(std::string(c.begin(), c.end()));
    for (const auto& column : bundle.c2) {
      for (const auto& point : column) {
        auto raw = point.Compress();
        seen.insert(std::string(raw.begin(), raw.end()));
      }
    }
  };
  insert_all(a);
  size_t after_a = seen.size();
  insert_all(b);
  EXPECT_EQ(seen.size(), after_a * 2) << "ciphertext points repeated across encryptions";
}

// Certificates for different neighbors use different neighbor keys, so the
// same block's keys are unrecognizable across its edges (the property that
// hides block membership from colluding neighbors).
TEST(UnlinkabilityTest, CertificatesForDifferentNeighborsDiffer) {
  auto prg = crypto::ChaCha20Prg::FromSeed(10);
  BlockKeys keys = TransferSetup(3, 4, prg);
  auto publics = PublicKeysOf(keys);
  crypto::U256 r1 = prg.NextScalar(crypto::CurveOrder());
  crypto::U256 r2 = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate c1 = MakeBlockCertificate(publics, r1);
  BlockCertificate c2 = MakeBlockCertificate(publics, r2);
  for (size_t m = 0; m < publics.size(); m++) {
    for (size_t b = 0; b < publics[m].size(); b++) {
      EXPECT_NE(c1.keys[m][b].point, c2.keys[m][b].point);
      EXPECT_NE(c1.keys[m][b].point, publics[m][b].point);
    }
  }
}

// The Appendix B release mechanism: empirical output distributions of the
// noised sum for two adjacent inputs (sums differing by the sensitivity
// Delta = k+1) satisfy the eps-DP ratio bound with sampling slack.
TEST(MechanismTest, AdjacentSumDistributionsSatisfyDpBound) {
  constexpr int kTrials = 60000;
  constexpr int kDelta = 4;         // block size k+1
  const double alpha = 0.9;  // mask is 2*Geo(alpha^(2/Delta)); mechanism is (-ln alpha)-DP
  const double effective = std::pow(alpha, 2.0 / kDelta);
  const double eps = -std::log(alpha);
  auto prg = crypto::ChaCha20Prg::FromSeed(11);

  // Histogram of sum + 2*Geo for sum=0 and sum=kDelta.
  std::map<int64_t, int> h0;
  std::map<int64_t, int> h1;
  for (int t = 0; t < kTrials; t++) {
    h0[0 + dp::EvenGeometricMask(prg, effective)]++;
    h1[kDelta + dp::EvenGeometricMask(prg, effective)]++;
  }
  // Compare probabilities where both histograms have solid mass.
  int compared = 0;
  for (const auto& [value, count0] : h0) {
    auto it = h1.find(value);
    if (it == h1.end() || count0 < 200 || it->second < 200) {
      continue;
    }
    double ratio = static_cast<double>(count0) / it->second;
    EXPECT_LT(ratio, std::exp(eps) * 1.35) << "value " << value;
    EXPECT_GT(ratio, std::exp(-eps) / 1.35) << "value " << value;
    compared++;
  }
  EXPECT_GE(compared, 5);
}

// Parity survives any even mask: the correctness core of the final
// protocol's noising step, checked across the mask distribution.
TEST(MechanismTest, EvenMaskPreservesParityAlways) {
  auto prg = crypto::ChaCha20Prg::FromSeed(12);
  for (int t = 0; t < 5000; t++) {
    int64_t sum = prg.NextBelow(16);
    int64_t mask = dp::EvenGeometricMask(prg, 0.7);
    EXPECT_EQ((sum + mask) & 1, sum & 1);
  }
}

}  // namespace
}  // namespace dstress::transfer
