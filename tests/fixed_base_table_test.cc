#include "src/crypto/fixed_base.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/crypto/chacha20.h"

namespace dstress::crypto {
namespace {

U256 OrderMinusOne() {
  U256 e;
  SubWithBorrow(CurveOrder(), U256::One(), &e);
  return e;
}

// The randomized corpus the satellite task pins: table-backed multiplication
// must agree with the generic ladder for every scalar, including the group
// identities 0, 1, n-1 and the wrap-around n itself.
TEST(FixedBaseTableTest, MulMatchesGenericMulOnCorpus) {
  auto prg = ChaCha20Prg::FromSeed(71);
  std::vector<EcPoint> bases = {
      EcPoint::Generator(),
      MulBase(prg.NextScalar(CurveOrder())),
      MulBase(prg.NextScalar(CurveOrder())),
  };
  std::vector<U256> corpus = {U256(0), U256::One(), U256(2),     U256(8),
                              U256(16), U256(255),  OrderMinusOne(), CurveOrder()};
  // Powers of two hit every window boundary; n + small exercises reduction.
  U256 pow2 = U256::One();
  for (int i = 0; i < 255; i++) {
    pow2 = Shl(pow2, 1);
    if (i % 16 == 0) {
      corpus.push_back(pow2);
    }
  }
  U256 above_n;
  AddWithCarry(CurveOrder(), U256(12345), &above_n);
  corpus.push_back(above_n);
  while (corpus.size() < 1000) {
    corpus.push_back(prg.NextScalar(CurveOrder()));
  }

  for (const EcPoint& base : bases) {
    FixedBaseTable table(base);
    for (const U256& k : corpus) {
      EXPECT_EQ(table.Mul(k), base.Mul(k));
    }
  }
}

TEST(FixedBaseTableTest, InfinityBaseYieldsInfinity) {
  FixedBaseTable table(EcPoint::Infinity());
  auto prg = ChaCha20Prg::FromSeed(72);
  for (int i = 0; i < 8; i++) {
    EXPECT_TRUE(table.Mul(prg.NextScalar(CurveOrder())).IsInfinity());
  }
}

TEST(FixedBaseTableTest, BuildManyMatchesSingleBuilds) {
  auto prg = ChaCha20Prg::FromSeed(73);
  std::vector<EcPoint> bases;
  for (int i = 0; i < 5; i++) {
    bases.push_back(MulBase(prg.NextScalar(CurveOrder())));
  }
  auto tables = FixedBaseTable::BuildMany(bases);
  ASSERT_EQ(tables.size(), bases.size());
  for (size_t t = 0; t < bases.size(); t++) {
    for (int i = 0; i < 16; i++) {
      U256 k = prg.NextScalar(CurveOrder());
      EXPECT_EQ(tables[t].Mul(k), bases[t].Mul(k));
    }
  }
}

TEST(FixedBaseTableTest, MulBatchMatchesPerLaneMul) {
  auto prg = ChaCha20Prg::FromSeed(74);
  std::vector<EcPoint> bases;
  for (int i = 0; i < 4; i++) {
    bases.push_back(MulBase(prg.NextScalar(CurveOrder())));
  }
  auto tables = FixedBaseTable::BuildMany(bases);

  // Shared recodings across lanes, mixed with zero and boundary scalars —
  // the exact aliasing pattern of bundle encryption.
  std::vector<U256> scalars = {prg.NextScalar(CurveOrder()), U256(0), U256::One(),
                               OrderMinusOne()};
  std::vector<FixedBaseTable::Recoding> recodings;
  for (const U256& k : scalars) {
    recodings.push_back(FixedBaseTable::Recode(k));
  }
  std::vector<MulTask> tasks;
  std::vector<std::pair<size_t, size_t>> expect;  // (table, scalar)
  for (size_t t = 0; t < tables.size(); t++) {
    for (size_t s = 0; s < scalars.size(); s++) {
      tasks.push_back(MulTask{&tables[t], &recodings[s]});
      expect.emplace_back(t, s);
    }
  }
  std::vector<AffinePoint> out(tasks.size());
  MulBatch(tasks.data(), tasks.size(), out.data());
  for (size_t i = 0; i < tasks.size(); i++) {
    auto [t, s] = expect[i];
    EXPECT_EQ(EcPoint::FromAffinePoint(out[i]), bases[t].Mul(scalars[s]));
  }
}

TEST(FixedBaseTableSetTest, MulSharedMatchesGenericMulOnCorpus) {
  auto prg = ChaCha20Prg::FromSeed(78);
  // Mixed set sizes straddle the per-window build threshold; a duplicated
  // base and the generator exercise equal-lane and canonical cases.
  for (size_t m : {1u, 3u, 40u}) {
    std::vector<EcPoint> bases;
    bases.push_back(EcPoint::Generator());
    while (bases.size() < m) {
      bases.push_back(MulBase(prg.NextScalar(CurveOrder())));
    }
    if (m >= 3) {
      bases[m - 1] = bases[0];
    }
    FixedBaseTableSet set = FixedBaseTableSet::Build(bases);
    ASSERT_EQ(set.num_keys(), bases.size());

    std::vector<U256> corpus = {U256(0), U256::One(), U256(16), OrderMinusOne(), CurveOrder()};
    while (corpus.size() < 64) {
      corpus.push_back(prg.NextScalar(CurveOrder()));
    }
    std::vector<AffinePoint> out(bases.size());
    for (const U256& k : corpus) {
      set.MulShared(FixedBaseTable::Recode(k), out.data());
      for (size_t i = 0; i < bases.size(); i++) {
        EXPECT_EQ(EcPoint::FromAffinePoint(out[i]), bases[i].Mul(k)) << "key " << i;
      }
    }
  }
}

TEST(BatchAffineTest, BatchAddAssignHandlesEverySpecialCase) {
  auto prg = ChaCha20Prg::FromSeed(75);
  EcPoint p = MulBase(prg.NextScalar(CurveOrder()));
  EcPoint q = MulBase(prg.NextScalar(CurveOrder()));

  std::vector<EcPoint> lhs = {p, EcPoint::Infinity(), p, p, EcPoint::Infinity(), q};
  std::vector<EcPoint> rhs = {q, p, p, p.Neg(), EcPoint::Infinity(), EcPoint::Infinity()};
  std::vector<AffinePoint> acc(lhs.size()), add(rhs.size());
  EcPoint::ToAffineBatch(lhs.data(), lhs.size(), acc.data());
  EcPoint::ToAffineBatch(rhs.data(), rhs.size(), add.data());

  BatchAddAssign(acc.data(), add.data(), acc.size());
  for (size_t i = 0; i < acc.size(); i++) {
    EXPECT_EQ(EcPoint::FromAffinePoint(acc[i]), lhs[i].Add(rhs[i])) << "lane " << i;
  }
}

TEST(BatchAffineTest, BatchAddSelectedTouchesOnlyIndexedLanes) {
  auto prg = ChaCha20Prg::FromSeed(76);
  std::vector<EcPoint> points;
  for (int i = 0; i < 6; i++) {
    points.push_back(MulBase(prg.NextScalar(CurveOrder())));
  }
  std::vector<AffinePoint> acc(points.size());
  EcPoint::ToAffineBatch(points.data(), points.size(), acc.data());

  EcPoint delta = MulBase(prg.NextScalar(CurveOrder()));
  AffinePoint delta_aff;
  EcPoint::ToAffineBatch(&delta, 1, &delta_aff);
  std::vector<size_t> indices = {1, 4};
  std::vector<AffinePoint> add = {delta_aff, delta_aff};
  BatchAddSelected(acc.data(), indices.data(), add.data(), indices.size());
  for (size_t i = 0; i < points.size(); i++) {
    EcPoint want = (i == 1 || i == 4) ? points[i].Add(delta) : points[i];
    EXPECT_EQ(EcPoint::FromAffinePoint(acc[i]), want) << "lane " << i;
  }
}

TEST(BatchAffineTest, ToAffineBatchAndDecompressBatchRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(77);
  std::vector<EcPoint> points = {EcPoint::Infinity()};
  for (int i = 0; i < 40; i++) {
    points.push_back(MulBase(prg.NextScalar(CurveOrder())));
  }
  points.push_back(EcPoint::Infinity());

  std::vector<AffinePoint> affine(points.size());
  EcPoint::ToAffineBatch(points.data(), points.size(), affine.data());
  for (size_t i = 0; i < points.size(); i++) {
    EXPECT_EQ(EcPoint::FromAffinePoint(affine[i]), points[i]) << "lane " << i;
  }

  std::vector<uint8_t> wire(points.size() * EcPoint::kCompressedSize);
  EcPoint::CompressBatch(points.data(), points.size(), wire.data());
  std::vector<EcPoint> decoded(points.size());
  ASSERT_TRUE(EcPoint::DecompressBatch(wire.data(), points.size(), decoded.data()));
  for (size_t i = 0; i < points.size(); i++) {
    EXPECT_EQ(decoded[i], points[i]) << "lane " << i;
  }

  wire[1] ^= 0xFF;  // corrupt one x coordinate
  EXPECT_FALSE(EcPoint::DecompressBatch(wire.data(), points.size(), decoded.data()));
}

}  // namespace
}  // namespace dstress::crypto
