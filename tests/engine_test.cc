// Engine-layer tests: the RunSpec -> Engine -> RunReport API, the
// ExecutionMode registry, and the two acceptance properties of the
// redesign:
//
//  (a) secure mode is a pure adapter — per-node traffic bytes (the fig4
//      probe quantity) and the released result are bit-identical to
//      driving core::Runtime directly with the same seed;
//  (b) cleartext mode reproduces the fixed-point reference results of the
//      EN and EGJ models exactly, and scales to a 10,000-vertex sweep in
//      test time.
#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "src/engine/backend.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/finance/utility.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"
#include "src/net/sim_network.h"
#include "src/programs/private_sum.h"

namespace dstress::engine {
namespace {

graph::Graph Ring(int n) {
  graph::Graph g(n);
  for (int v = 0; v < n; v++) {
    g.AddEdge(v, (v + 1) % n);
  }
  return g;
}

TopologySpec RingTopology(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < n; v++) {
    edges.emplace_back(v, (v + 1) % n);
  }
  return ExplicitTopology(n, std::move(edges));
}

// (a) The fig4-style traffic probe: an EN run through the engine must be
// byte-identical, per node, to the same run hand-wired onto core::Runtime.
TEST(EngineSecureModeTest, TrafficBitIdenticalToDirectRuntime) {
  Rng rng(31);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 10;
  topo.core_size = 3;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);

  finance::WorkloadParams workload;
  workload.core_size = 3;
  finance::ShockParams shock;
  shock.shocked_banks = {0};

  constexpr uint64_t kSeed = 5;
  constexpr int kIterations = 3;
  constexpr double kAlpha = 0.5;

  // The engine path.
  RunSpec spec;
  spec.graph = g;
  spec.model = ContagionModel::kEisenbergNoe;
  spec.workload = workload;
  spec.shock = shock;
  spec.noise_alpha = kAlpha;
  spec.iterations = kIterations;
  spec.block_size = 3;
  spec.seed = kSeed;
  Engine engine(spec);
  RunReport report = engine.Run();

  // The pre-redesign path: hand-assembled program + workload + runtime.
  finance::EnProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = kIterations;
  params.noise_alpha = kAlpha;
  finance::EnInstance instance = finance::MakeEnWorkload(g, workload, shock);
  core::RuntimeConfig config;
  config.block_size = 3;
  config.seed = kSeed;
  core::Runtime runtime(config, g, finance::MakeEnProgram(params));
  core::RunMetrics direct_metrics;
  int64_t direct_released =
      runtime.Run(finance::MakeEnInitialStates(instance, params), &direct_metrics);

  EXPECT_EQ(report.released, direct_released);
  EXPECT_EQ(report.reference, finance::EnSolveFixed(instance, params));
  EXPECT_EQ(report.metrics.total_bytes, direct_metrics.total_bytes);
  ASSERT_EQ(engine.transport().num_nodes(), runtime.network().num_nodes());
  for (int v = 0; v < g.num_vertices(); v++) {
    net::TrafficStats via_engine = engine.transport().NodeStats(v);
    net::TrafficStats direct = runtime.network().NodeStats(v);
    EXPECT_EQ(via_engine.bytes_sent, direct.bytes_sent) << "node " << v;
    EXPECT_EQ(via_engine.bytes_received, direct.bytes_received) << "node " << v;
    EXPECT_EQ(via_engine.messages_sent, direct.messages_sent) << "node " << v;
  }
}

// The transport-redesign acceptance property: for one fixed RunSpec, a
// kSecure run over the TCP multi-process backend produces the same released
// figure and bit-identical per-node TrafficStats as the same spec over
// SimNetwork. The spec selects the wire by name only.
TEST(EngineSecureModeTest, TcpTransportBitIdenticalToSimNetwork) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(10, 3);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0};
  spec.noise_alpha = 0.5;
  spec.iterations = 2;
  spec.block_size = 3;
  spec.seed = 5;

  // Snapshot the sim run's stats, then destroy the engine: the TCP backend
  // forks its bank processes, which is cleanest while no worker-pool
  // threads from a previous run are alive (see tcp_network.h).
  RunReport sim_report;
  std::vector<net::TrafficStats> sim_stats;
  {
    spec.transport = net::SimTransportSpec();
    Engine sim_engine(spec);
    sim_report = sim_engine.Run();
    for (int v = 0; v < sim_engine.transport().num_nodes(); v++) {
      sim_stats.push_back(sim_engine.transport().NodeStats(v));
    }
  }

  spec.transport = net::TcpTransportSpec();
  Engine tcp_engine(spec);
  RunReport tcp_report = tcp_engine.Run();

  EXPECT_EQ(tcp_report.released, sim_report.released);
  EXPECT_EQ(tcp_report.metrics.total_bytes, sim_report.metrics.total_bytes);
  ASSERT_EQ(tcp_engine.transport().num_nodes(), static_cast<int>(sim_stats.size()));
  for (int v = 0; v < tcp_engine.transport().num_nodes(); v++) {
    net::TrafficStats tcp = tcp_engine.transport().NodeStats(v);
    const net::TrafficStats& sim = sim_stats[v];
    EXPECT_EQ(tcp.bytes_sent, sim.bytes_sent) << "node " << v;
    EXPECT_EQ(tcp.bytes_received, sim.bytes_received) << "node " << v;
    EXPECT_EQ(tcp.messages_sent, sim.messages_sent) << "node " << v;
    EXPECT_EQ(tcp.messages_received, sim.messages_received) << "node " << v;
  }
}

// The packed-share acceptance property: the batched bitsliced MPC data
// plane (RunSpec::mpc_batching, the default) releases the same figure and
// produces bit-identical per-node TrafficStats — bytes AND message counts —
// as the seed one-role-per-task schedule. Combined with
// TcpTransportBitIdenticalToSimNetwork (which runs the default batched path
// over both wires), this pins the batched path to the seed path under sim
// and tcp alike.
TEST(EngineSecureModeTest, BatchedMpcBitIdenticalToSeedSchedule) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(12, 3);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0};
  spec.noise_alpha = 0.5;
  spec.iterations = 2;
  spec.block_size = 4;
  // Tree aggregation so the batched leaf/combine stages are exercised too.
  spec.aggregation_fanout = 3;
  spec.seed = 5;

  spec.mpc_batching = false;
  Engine seed_engine(spec);
  RunReport seed_report = seed_engine.Run();

  spec.mpc_batching = true;
  Engine batched_engine(spec);
  RunReport batched_report = batched_engine.Run();

  EXPECT_EQ(batched_report.released, seed_report.released);
  EXPECT_EQ(batched_report.metrics.total_bytes, seed_report.metrics.total_bytes);
  EXPECT_EQ(batched_report.metrics.triples_consumed, seed_report.metrics.triples_consumed);
  ASSERT_EQ(batched_engine.transport().num_nodes(), seed_engine.transport().num_nodes());
  for (int v = 0; v < batched_engine.transport().num_nodes(); v++) {
    net::TrafficStats batched = batched_engine.transport().NodeStats(v);
    net::TrafficStats seed = seed_engine.transport().NodeStats(v);
    EXPECT_EQ(batched.bytes_sent, seed.bytes_sent) << "node " << v;
    EXPECT_EQ(batched.bytes_received, seed.bytes_received) << "node " << v;
    EXPECT_EQ(batched.messages_sent, seed.messages_sent) << "node " << v;
    EXPECT_EQ(batched.messages_received, seed.messages_received) << "node " << v;
  }
}

// The transfer-crypto-engine acceptance property: the batched transfer plane
// (RunSpec::transfer_batching, the default — fixed-base key tables, batched
// bundle encryption, per-edge batched role tasks) releases the same figure
// and produces bit-identical per-node TrafficStats as the seed per-role
// transfer schedule, over the sim wire and the tcp wire alike.
TEST(EngineSecureModeTest, BatchedTransferBitIdenticalToSeedSchedule) {
  RunSpec base;
  base.topology = CorePeripheryTopology(12, 3);
  base.model = ContagionModel::kEisenbergNoe;
  base.shock.shocked_banks = {0};
  base.noise_alpha = 0.5;
  base.iterations = 2;
  base.block_size = 4;
  base.aggregation_fanout = 3;
  base.seed = 5;

  for (const char* backend : {"sim", "tcp"}) {
    RunSpec spec = base;
    spec.transport.backend = backend;

    spec.transfer_batching = false;
    Engine seed_engine(spec);
    RunReport seed_report = seed_engine.Run();
    std::vector<net::TrafficStats> seed_stats;
    for (int v = 0; v < seed_engine.transport().num_nodes(); v++) {
      seed_stats.push_back(seed_engine.transport().NodeStats(v));
    }

    spec.transfer_batching = true;
    Engine batched_engine(spec);
    RunReport batched_report = batched_engine.Run();

    EXPECT_EQ(batched_report.released, seed_report.released) << backend;
    EXPECT_EQ(batched_report.metrics.total_bytes, seed_report.metrics.total_bytes) << backend;
    ASSERT_EQ(batched_engine.transport().num_nodes(), static_cast<int>(seed_stats.size()));
    for (int v = 0; v < batched_engine.transport().num_nodes(); v++) {
      net::TrafficStats batched = batched_engine.transport().NodeStats(v);
      const net::TrafficStats& seed = seed_stats[v];
      EXPECT_EQ(batched.bytes_sent, seed.bytes_sent) << backend << " node " << v;
      EXPECT_EQ(batched.bytes_received, seed.bytes_received) << backend << " node " << v;
      EXPECT_EQ(batched.messages_sent, seed.messages_sent) << backend << " node " << v;
      EXPECT_EQ(batched.messages_received, seed.messages_received) << backend << " node " << v;
    }
  }
}

// Layer batching is what keeps GMW round count equal to the circuit's AND
// depth (the paper's linearity argument); the metrics surface both so any
// regression in the batched exchange schedule fails loudly. Both schedules
// must report rounds == depth.
TEST(EngineSecureModeTest, MpcRoundsEqualUpdateCircuitAndDepth) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(8, 3);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0};
  spec.noise_alpha = 0.5;
  spec.iterations = 1;
  spec.block_size = 3;
  spec.seed = 2;
  for (bool batching : {true, false}) {
    spec.mpc_batching = batching;
    RunReport report = Engine(spec).Run();
    EXPECT_GT(report.metrics.update_and_depth, 0u);
    EXPECT_EQ(report.metrics.update_rounds, report.metrics.update_and_depth)
        << "batching=" << batching;
    EXPECT_GT(report.metrics.triples_consumed, 0u);
  }
}

// (b) Cleartext mode evaluates the same circuits the MPC would, so with
// noise disabled it must land exactly on the fixed-point references.
TEST(EngineCleartextModeTest, MatchesEnFixedPointReference) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(12, 4);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0, 1};
  spec.noise_alpha = 1e-12;  // effectively no output noise
  spec.iterations = 4;
  spec.seed = 3;
  spec.mode = ExecutionMode::kCleartextFast;
  RunReport report = Engine(spec).Run();
  ASSERT_TRUE(report.has_reference);
  EXPECT_EQ(report.released, static_cast<int64_t>(report.reference));
  EXPECT_GT(report.metrics.total_bytes, 0u);
}

TEST(EngineCleartextModeTest, MatchesEgjFixedPointReference) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(10, 4);
  spec.model = ContagionModel::kElliottGolubJackson;
  spec.shock.shocked_banks = {0, 1};
  spec.noise_alpha = 1e-12;
  spec.iterations = 3;
  spec.seed = 8;
  spec.mode = ExecutionMode::kCleartextFast;
  RunReport report = Engine(spec).Run();
  ASSERT_TRUE(report.has_reference);
  EXPECT_EQ(report.released, static_cast<int64_t>(report.reference));
}

// Both modes agree on the same spec when the output noise is disabled.
TEST(EngineCleartextModeTest, AgreesWithSecureModeOnSameSpec) {
  RunSpec spec;
  spec.topology = RingTopology(6);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {2};
  spec.noise_alpha = 1e-12;
  spec.iterations = 3;
  spec.block_size = 3;
  spec.seed = 11;

  spec.mode = ExecutionMode::kSecure;
  RunReport secure = Engine(spec).Run();
  spec.mode = ExecutionMode::kCleartextFast;
  RunReport cleartext = Engine(spec).Run();
  EXPECT_EQ(secure.released, cleartext.released);
  EXPECT_EQ(secure.reference, cleartext.reference);
  // The fast path skips the crypto: traffic shrinks by orders of magnitude.
  EXPECT_LT(cleartext.metrics.total_bytes, secure.metrics.total_bytes / 100);
}

// The cleartext gather mirrors the secure §3.6 aggregation tree when a
// fanout is set: the released figure is unchanged (word sums are
// associative) while the root stops funneling every state — with N=24 and
// fanout 4 the root receives its own leaf group plus ceil(24/4)=6 partials
// instead of 24 states.
TEST(EngineCleartextModeTest, TreeAggregationMatchesFlatAndSpreadsGather) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(24, 5);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0, 1};
  spec.noise_alpha = 1e-12;
  spec.iterations = 3;
  spec.seed = 21;
  spec.mode = ExecutionMode::kCleartextFast;

  Engine flat_engine(spec);
  RunReport flat = flat_engine.Run();

  spec.aggregation_fanout = 4;
  Engine tree_engine(spec);
  RunReport tree = tree_engine.Run();

  EXPECT_EQ(tree.released, flat.released);
  ASSERT_TRUE(tree.has_reference);
  EXPECT_EQ(tree.released, static_cast<int64_t>(tree.reference));
  // The root (node 0) receives strictly fewer messages under the tree.
  EXPECT_LT(tree_engine.transport().NodeStats(0).messages_received,
            flat_engine.transport().NodeStats(0).messages_received);
  // And other nodes now share the gather work.
  uint64_t non_root_received = 0;
  for (int v = 1; v < 24; v++) {
    non_root_received += tree_engine.transport().NodeStats(v).messages_received;
  }
  EXPECT_GT(non_root_received, 0u);
}

// The ROADMAP's headline workload for the fast path: a sweep-scale run at
// N = 10,000 vertices completes through the public API in test time.
TEST(EngineCleartextModeTest, SweepAtTenThousandVertices) {
  constexpr int kN = 10000;
  RunSpec spec;
  spec.topology = RingTopology(kN);
  spec.model = ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0, 1, 2, 3, 4};
  spec.noise_alpha = 1e-12;
  spec.seed = 17;
  spec.mode = ExecutionMode::kCleartextFast;
  Engine engine(spec);
  EXPECT_EQ(engine.iterations(), AutoIterations(kN));  // 14 rounds
  RunReport report = engine.Run();
  ASSERT_TRUE(report.has_reference);
  EXPECT_EQ(report.released, static_cast<int64_t>(report.reference));
  // Traffic crossed the metered transport: one L-bit word per edge per
  // iteration plus the aggregation gather.
  EXPECT_GT(report.metrics.communicate.bytes, 0u);
  EXPECT_GT(report.metrics.aggregate.bytes, 0u);
}

TEST(EngineTest, ReusableAndDeterministicForFixedSeed) {
  RunSpec spec;
  spec.topology = CorePeripheryTopology(10, 3);
  spec.shock.shocked_banks = {0};
  spec.iterations = 2;
  spec.block_size = 3;
  spec.seed = 9;
  Engine a(spec);
  int64_t first = a.Run().released;
  EXPECT_EQ(first, a.Run().released);  // engine reusable
  Engine b(spec);
  EXPECT_EQ(first, b.Run().released);  // deterministic across instances
}

TEST(EngineTest, CustomProgramRunsThroughBothModes) {
  graph::Graph g = Ring(6);
  programs::PrivateSumParams params;
  params.degree_bound = 1;
  params.noise.alpha = 1e-12;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 10;
  std::vector<uint32_t> values = {5, 10, 15, 20, 25, 30};

  RunSpec spec;
  spec.graph = g;
  spec.model = ContagionModel::kCustom;
  spec.custom_program = programs::BuildPrivateSumProgram(params);
  spec.custom_states = programs::MakePrivateSumStates(values, params.value_bits);
  spec.block_size = 3;
  spec.seed = 4;
  for (ExecutionMode mode : {ExecutionMode::kSecure, ExecutionMode::kCleartextFast}) {
    spec.mode = mode;
    RunReport report = Engine(spec).Run();
    EXPECT_EQ(report.released, programs::PlaintextSum(values, params.aggregate_bits))
        << ExecutionModeName(mode);
    EXPECT_FALSE(report.has_reference);
  }
}

TEST(EngineTest, AutoIterationsIsCeilLog2) {
  EXPECT_EQ(AutoIterations(50), 6);  // 2^6 = 64 >= 50
  EXPECT_EQ(AutoIterations(64), 6);
  EXPECT_EQ(AutoIterations(65), 7);
  EXPECT_EQ(AutoIterations(2), 1);
}

TEST(ExecutionModeTest, NamesRoundTrip) {
  EXPECT_STREQ(ExecutionModeName(ExecutionMode::kSecure), "secure");
  EXPECT_STREQ(ExecutionModeName(ExecutionMode::kCleartextFast), "cleartext");
  EXPECT_EQ(ExecutionModeFromName("secure"), ExecutionMode::kSecure);
  EXPECT_EQ(ExecutionModeFromName("cleartext"), ExecutionMode::kCleartextFast);
  EXPECT_FALSE(ExecutionModeFromName("tls").has_value());
}

// A registered factory replaces a built-in backend (the seam the planned
// TCP multi-process transport will use), and ResetExecutionMode restores
// the built-in.
class StubBackend : public ExecutionBackend {
 public:
  const char* name() const override { return "stub"; }
  int64_t Execute(const std::vector<mpc::BitVector>&, core::RunMetrics* metrics) override {
    if (metrics != nullptr) {
      *metrics = core::RunMetrics{};
    }
    return 424242;
  }
  void AttachObserver(net::NetworkObserver*) override {}
  const net::Transport& transport() const override { return net_; }

 private:
  net::SimNetwork net_{1};
};

TEST(ExecutionModeRegistryTest, OverrideAndReset) {
  RegisterExecutionMode(ExecutionMode::kCleartextFast,
                        [](const BackendContext&) { return std::make_unique<StubBackend>(); });

  RunSpec spec;
  spec.topology = CorePeripheryTopology(8, 2);
  spec.iterations = 1;
  spec.mode = ExecutionMode::kCleartextFast;
  EXPECT_EQ(Engine(spec).Run().released, 424242);

  ResetExecutionMode(ExecutionMode::kCleartextFast);
  spec.noise_alpha = 1e-12;
  RunReport real = Engine(spec).Run();
  EXPECT_EQ(real.released, static_cast<int64_t>(real.reference));
}

}  // namespace
}  // namespace dstress::engine
