#include "src/baseline/naive_mpc.h"

#include <gtest/gtest.h>

#include "src/mpc/sharing.h"

namespace dstress::baseline {
namespace {

TEST(NaiveMpcTest, MatMulCircuitMatchesNative) {
  constexpr int kN = 3;
  constexpr int kBits = 8;
  circuit::Circuit c = BuildMatMulCircuit(kN, kBits);
  EXPECT_EQ(c.num_inputs(), 2u * kN * kN * kBits);
  EXPECT_EQ(c.num_outputs(), static_cast<size_t>(kN) * kN * kBits);

  uint64_t a[kN][kN] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  uint64_t b[kN][kN] = {{9, 8, 7}, {6, 5, 4}, {3, 2, 1}};
  mpc::BitVector in;
  for (auto& row : a) {
    for (uint64_t v : row) {
      mpc::AppendBits(&in, mpc::WordToBits(v, kBits));
    }
  }
  for (auto& row : b) {
    for (uint64_t v : row) {
      mpc::AppendBits(&in, mpc::WordToBits(v, kBits));
    }
  }
  auto out = c.Eval(in);
  for (int i = 0; i < kN; i++) {
    for (int j = 0; j < kN; j++) {
      uint64_t expected = 0;
      for (int k = 0; k < kN; k++) {
        expected += a[i][k] * b[k][j];
      }
      expected &= (1u << kBits) - 1;
      EXPECT_EQ(mpc::BitsToWord(out, static_cast<size_t>(i * kN + j) * kBits, kBits), expected)
          << i << "," << j;
    }
  }
}

TEST(NaiveMpcTest, AndCountGrowsCubically) {
  size_t and4 = BuildMatMulCircuit(4, 8).stats().num_and;
  size_t and8 = BuildMatMulCircuit(8, 8).stats().num_and;
  double ratio = static_cast<double>(and8) / and4;
  EXPECT_NEAR(ratio, 8.0, 1.0);  // (8/4)^3
}

TEST(NaiveMpcTest, GmwRunVerifies) {
  NaiveMpcParams params;
  params.matrix_n = 4;
  params.value_bits = 8;
  params.parties = 3;
  NaiveMpcResult result = RunNaiveMatMul(params);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.total_bytes, 0u);
  EXPECT_EQ(result.and_gates, BuildMatMulCircuit(4, 8).stats().num_and);
}

TEST(NaiveMpcTest, GmwRunVerifiesWithOtTriples) {
  NaiveMpcParams params;
  params.matrix_n = 2;
  params.value_bits = 8;
  params.parties = 2;
  params.use_ot_triples = true;
  EXPECT_TRUE(RunNaiveMatMul(params).verified);
}

TEST(NaiveMpcTest, ExtrapolationFormula) {
  // The paper's §5.5 extrapolation: (1750/25)^3 * 40 min * 11 ≈ 287 years.
  double seconds = ExtrapolateMatrixPowerSeconds(40.0 * 60, 25, 1750, 12);
  double years = seconds / (365.25 * 24 * 3600);
  EXPECT_NEAR(years, 287.0, 15.0);
}

TEST(NaiveMpcTest, ExtrapolationScalesWithPower) {
  double base = ExtrapolateMatrixPowerSeconds(10, 10, 100, 2);
  EXPECT_NEAR(ExtrapolateMatrixPowerSeconds(10, 10, 100, 4), 3 * base, 1e-9);
}

}  // namespace
}  // namespace dstress::baseline
