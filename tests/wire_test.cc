// Wire-codec tests: frame round-trips, incremental decoding across
// arbitrary chunk boundaries (a corpus re-chunked many ways must always
// decode to the same frame sequence), and corruption detection.
#include "src/net/wire.h"

#include <gtest/gtest.h>

#include <vector>

namespace dstress::net {
namespace {

std::vector<WireFrame> Corpus() {
  std::vector<WireFrame> frames;
  frames.push_back({0, 1, 0, {}});                      // empty payload
  frames.push_back({1, 0, 7, {0xde, 0xad, 0xbe}});      // small
  frames.push_back({5, 5, 0, {0x42}});                  // self-send
  frames.push_back({-1, 2, kControlSession, {1, 2, 3}});  // control, negative id
  WireFrame big;
  big.from = 1000000;
  big.to = 999999;
  big.session = ~0ULL - 1;
  big.payload.resize(70000);  // larger than a 64 KB read buffer
  for (size_t i = 0; i < big.payload.size(); i++) {
    big.payload[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  frames.push_back(big);
  frames.push_back({2, 3, 1ULL << 60, {0}});
  return frames;
}

TEST(WireTest, SingleFrameRoundTrips) {
  for (const WireFrame& frame : Corpus()) {
    Bytes encoded = EncodeFrame(frame);
    EXPECT_EQ(encoded.size(), kWireFrameOverhead + frame.payload.size());
    FrameDecoder decoder;
    decoder.Feed(encoded.data(), encoded.size());
    WireFrame out;
    ASSERT_TRUE(decoder.Next(&out));
    EXPECT_EQ(out, frame);
    EXPECT_FALSE(decoder.Next(&out));
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(WireTest, AppendFrameConcatenatesStream) {
  Bytes stream;
  for (const WireFrame& frame : Corpus()) {
    AppendFrame(frame, &stream);
  }
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  for (const WireFrame& frame : Corpus()) {
    WireFrame out;
    ASSERT_TRUE(decoder.Next(&out));
    EXPECT_EQ(out, frame);
  }
  WireFrame out;
  EXPECT_FALSE(decoder.Next(&out));
}

// The decoder must be insensitive to how read(2) slices the stream: feed
// the same corpus in many deterministic-pseudorandom chunkings and expect
// the identical frame sequence every time.
TEST(WireTest, DecodesAcrossArbitraryChunkBoundaries) {
  std::vector<WireFrame> corpus = Corpus();
  Bytes stream;
  for (const WireFrame& frame : corpus) {
    AppendFrame(frame, &stream);
  }
  uint64_t rng = 12345;
  for (int round = 0; round < 50; round++) {
    FrameDecoder decoder;
    std::vector<WireFrame> decoded;
    size_t pos = 0;
    WireFrame out;
    while (pos < stream.size()) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      // Chunk sizes from 1 byte up to ~8 KB, crossing every boundary kind.
      size_t chunk = 1 + static_cast<size_t>((rng >> 33) % 8192);
      chunk = std::min(chunk, stream.size() - pos);
      decoder.Feed(stream.data() + pos, chunk);
      pos += chunk;
      while (decoder.Next(&out)) {
        decoded.push_back(out);
      }
    }
    ASSERT_EQ(decoded.size(), corpus.size()) << "round " << round;
    for (size_t i = 0; i < corpus.size(); i++) {
      EXPECT_EQ(decoded[i], corpus[i]) << "round " << round << " frame " << i;
    }
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(WireTest, PartialHeaderYieldsNothing) {
  Bytes encoded = EncodeFrame({1, 2, 3, {9, 9}});
  FrameDecoder decoder;
  WireFrame out;
  for (size_t i = 0; i < encoded.size() - 1; i++) {
    decoder.Feed(&encoded[i], 1);
    EXPECT_FALSE(decoder.Next(&out)) << "after byte " << i;
  }
  decoder.Feed(&encoded[encoded.size() - 1], 1);
  EXPECT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out.payload, (Bytes{9, 9}));
}

// Bootstrap control frames (docs/wire-protocol.md): every frame round-trips
// through the codec, uses kControlSession, and carries the handshake
// protocol version.

TEST(WireBootstrapTest, HelloFrameRoundTrips) {
  PeerEndpoint endpoint{"10.1.2.3", 7411};
  WireFrame frame = MakeHelloFrame(5, endpoint);
  EXPECT_EQ(frame.session, kControlSession);
  EXPECT_EQ(frame.from, 5);
  EXPECT_EQ(frame.payload[1], kBootstrapProtocolVersion);

  // Through the codec, as on the wire.
  Bytes encoded = EncodeFrame(frame);
  FrameDecoder decoder;
  decoder.Feed(encoded.data(), encoded.size());
  WireFrame decoded;
  ASSERT_TRUE(decoder.Next(&decoded));

  NodeId node = -1;
  PeerEndpoint out;
  ParseHelloFrame(decoded, &node, &out);
  EXPECT_EQ(node, 5);
  EXPECT_EQ(out, endpoint);
}

TEST(WireBootstrapTest, PeersFrameRoundTripsPerBankEndpoints) {
  std::vector<PeerEndpoint> peers = {
      {"127.0.0.1", 50001},
      {"10.0.0.11", 7411},
      {"192.168.7.200", 65535},
      {"10.0.0.13", 1},
  };
  std::vector<PeerEndpoint> out = ParsePeersFrame(MakePeersFrame(peers));
  EXPECT_EQ(out, peers);
}

TEST(WireBootstrapTest, MeshHelloAndReadyRoundTrip) {
  EXPECT_EQ(ParseMeshHelloFrame(MakeMeshHelloFrame(12)), 12);
  EXPECT_EQ(ParseReadyFrame(MakeReadyFrame(0)), 0);
}

TEST(WireBootstrapTest, VersionMismatchAborts) {
  WireFrame frame = MakeReadyFrame(3);
  frame.payload[1] = kBootstrapProtocolVersion + 1;  // a build from the future
  EXPECT_DEATH(ParseReadyFrame(frame), "speaks handshake protocol version");
}

TEST(WireBootstrapTest, WrongControlTypeAborts) {
  WireFrame hello = MakeHelloFrame(0, {"127.0.0.1", 1});
  EXPECT_DEATH(ParsePeersFrame(hello), "CHECK failed");
}

TEST(WireTest, CorruptLengthPrefixAborts) {
  EXPECT_DEATH(
      {
        // A length prefix below the 16-byte header minimum is corruption.
        Bytes bogus(8, 0);
        bogus[0] = 4;
        FrameDecoder decoder;
        decoder.Feed(bogus.data(), bogus.size());
        WireFrame out;
        decoder.Next(&out);
      },
      "CHECK failed");
}

}  // namespace
}  // namespace dstress::net
