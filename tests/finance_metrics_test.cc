#include "src/finance/metrics.h"

#include <gtest/gtest.h>

#include "src/finance/workload.h"
#include "src/graph/generators.h"

namespace dstress::finance {
namespace {

// Two banks, bank 0 owes bank 1 more than it can pay.
EnInstance TwoBankEn(graph::Graph* g) {
  g->AddEdge(0, 1);
  EnInstance instance;
  instance.graph = g;
  instance.cash = {10, 50};
  instance.debts = {{30}, {}};  // bank 0 owes 30, has 10
  return instance;
}

TEST(EnBreakdownTest, InsolventBankIsFlagged) {
  graph::Graph g(2);
  EnInstance instance = TwoBankEn(&g);
  EnProgramParams params;
  params.degree_bound = 1;
  params.iterations = 3;
  RiskBreakdown breakdown = EnBreakdown(instance, params);
  EXPECT_EQ(breakdown.failed_banks, 1);
  EXPECT_TRUE(breakdown.banks[0].failed);
  EXPECT_FALSE(breakdown.banks[1].failed);
  // Bank 0 can pay 10 of 30: shortfall 20 (fixed-point rounding <= 1 unit).
  EXPECT_NEAR(static_cast<double>(breakdown.banks[0].shortfall), 20.0, 1.0);
  EXPECT_EQ(breakdown.banks[1].shortfall, 0u);
}

TEST(EnBreakdownTest, TotalMatchesPerBankSum) {
  Rng rng(3);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 20;
  topo.core_size = 4;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  finance::WorkloadParams wp;
  wp.core_size = 4;
  ShockParams shock;
  shock.shocked_banks = {0, 1};
  EnInstance instance = MakeEnWorkload(g, wp, shock);
  EnProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 6;
  RiskBreakdown breakdown = EnBreakdown(instance, params);
  uint64_t sum = 0;
  for (const auto& outcome : breakdown.banks) {
    sum += outcome.shortfall;
  }
  // The aggregate TDS is computed by the same formula per bank; allow one
  // rounding unit per bank for the division order.
  EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(breakdown.total_shortfall),
              static_cast<double>(breakdown.banks.size()));
  EXPECT_GT(breakdown.failed_banks, 0);
}

TEST(EnBreakdownTest, NoShockNoFailures) {
  Rng rng(5);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 15;
  topo.core_size = 3;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  finance::WorkloadParams wp;
  wp.core_size = 3;
  EnInstance instance = MakeEnWorkload(g, wp, ShockParams{});
  EnProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 6;
  RiskBreakdown breakdown = EnBreakdown(instance, params);
  EXPECT_EQ(breakdown.failed_banks, 0);
  EXPECT_EQ(breakdown.total_shortfall, 0u);
}

TEST(EgjBreakdownTest, ShockedBanksFailFirst) {
  Rng rng(8);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 20;
  topo.core_size = 4;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  finance::WorkloadParams wp;
  wp.core_size = 4;
  wp.cross_holding = 0.3;
  wp.threshold_ratio = 0.8;
  wp.penalty_ratio = 0.4;
  ShockParams shock;
  shock.shocked_banks = {0};
  EgjInstance instance = MakeEgjWorkload(g, wp, shock);
  EgjProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 6;
  RiskBreakdown breakdown = EgjBreakdown(instance, params);
  EXPECT_TRUE(breakdown.banks[0].failed) << "the shocked core bank must fail";
  EXPECT_GT(breakdown.total_shortfall, 0u);
  // Shortfalls are only attributed to failed banks.
  for (const auto& outcome : breakdown.banks) {
    if (!outcome.failed) {
      EXPECT_EQ(outcome.shortfall, 0u) << "bank " << outcome.bank;
    }
  }
}

TEST(BreakdownComparisonTest, FailedCountCoarserThanTds) {
  // §4.1's point: two shocks with very different dollar impact can fail the
  // same number of banks, but the TDS separates them.
  graph::Graph g1(2);
  EnInstance small = TwoBankEn(&g1);
  graph::Graph g2(2);
  EnInstance large = TwoBankEn(&g2);
  large.debts = {{3000}, {}};
  large.cash = {10, 50};

  EnProgramParams params;
  params.degree_bound = 1;
  params.iterations = 3;
  RiskBreakdown small_b = EnBreakdown(small, params);
  RiskBreakdown large_b = EnBreakdown(large, params);
  EXPECT_EQ(small_b.failed_banks, large_b.failed_banks);
  EXPECT_GT(large_b.total_shortfall, 10 * small_b.total_shortfall);
}

}  // namespace
}  // namespace dstress::finance
