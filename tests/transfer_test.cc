#include "src/transfer/transfer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "src/net/sim_network.h"
#include "src/transfer/batch_engine.h"

namespace dstress::transfer {
namespace {

struct SchemeCase {
  int block_size;
  int message_bits;
  double alpha;
};

class TransferSchemeTest : public ::testing::TestWithParam<SchemeCase> {};

// Theorem 1 (Appendix A): the value shared in B_v after the transfer equals
// the value shared in B_u before it.
TEST_P(TransferSchemeTest, CorrectnessTheorem) {
  auto [block_size, bits, alpha] = GetParam();
  auto prg = crypto::ChaCha20Prg::FromSeed(1000 + block_size * 17 + bits);
  TransferParams params;
  params.block_size = block_size;
  params.message_bits = bits;
  params.budget_alpha = alpha;
  // Size the lookup table so the Appendix B failure event is negligible
  // across every draw this test makes (3 trials × bits × block_size sums).
  params.dlog_range = params.RecommendedDlogRange(1e-12);

  BlockKeys dest_keys = TransferSetup(block_size, bits, prg);
  crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(dest_keys), neighbor_key);
  crypto::DlogTable table(params.dlog_range);

  for (int trial = 0; trial < 3; trial++) {
    // Source block holds an XOR-sharing of a random message.
    mpc::BitVector message(bits);
    for (auto& bit : message) {
      bit = prg.NextBit() ? 1 : 0;
    }
    auto source_shares = mpc::ShareBits(message, block_size, prg);

    std::vector<SubshareBundle> bundles;
    for (int x = 0; x < block_size; x++) {
      bundles.push_back(EncryptSubshares(source_shares[x], cert, prg));
    }
    AggregatedColumns agg = AggregateSubshares(bundles, params, prg);
    AggregatedColumns adjusted = AdjustAggregated(agg, neighbor_key);

    std::vector<mpc::BitVector> dest_shares(block_size);
    for (int y = 0; y < block_size; y++) {
      MemberColumn column{adjusted.c1, adjusted.c2[y]};
      ASSERT_TRUE(RecoverShare(column, dest_keys.members[y], table, &dest_shares[y]))
          << "member " << y;
    }
    EXPECT_EQ(mpc::ReconstructBits(dest_shares), message) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, TransferSchemeTest,
                         ::testing::Values(SchemeCase{2, 1, 0.5}, SchemeCase{3, 12, 0.9},
                                           SchemeCase{4, 8, 0.99}, SchemeCase{8, 12, 0.9},
                                           SchemeCase{8, 16, 0.5}, SchemeCase{12, 12, 0.9}));

TEST(TransferTest, WithoutAdjustmentRecoveryFails) {
  auto prg = crypto::ChaCha20Prg::FromSeed(2);
  TransferParams params;
  params.block_size = 3;
  params.message_bits = 4;
  params.dlog_range = 256;
  BlockKeys keys = TransferSetup(3, 4, prg);
  crypto::U256 r = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys), r);
  crypto::DlogTable table(params.dlog_range);

  mpc::BitVector message = {1, 0, 1, 0};
  auto shares = mpc::ShareBits(message, 3, prg);
  std::vector<SubshareBundle> bundles;
  for (int x = 0; x < 3; x++) {
    bundles.push_back(EncryptSubshares(shares[x], cert, prg));
  }
  AggregatedColumns agg = AggregateSubshares(bundles, params, prg);
  // Decrypting the unadjusted ciphertext with original keys lands outside
  // the lookup table (the point is blinded by the unknown neighbor key).
  mpc::BitVector out;
  EXPECT_FALSE(RecoverShare(MemberColumn{agg.c1, agg.c2[0]}, keys.members[0], table, &out));
}

TEST(TransferTest, NoiseIsAppliedToBitSums) {
  // With heavy masking noise (alpha close to 1), decrypted bit sums should
  // frequently differ from the raw sums, while parity stays intact — here
  // verified indirectly: recovery still reconstructs the message.
  auto prg = crypto::ChaCha20Prg::FromSeed(3);
  TransferParams params;
  params.block_size = 4;
  params.message_bits = 8;
  params.budget_alpha = 0.999;  // effective alpha^(2/4) — wide noise
  params.dlog_range = params.RecommendedDlogRange(1e-12);
  BlockKeys keys = TransferSetup(4, 8, prg);
  crypto::U256 r = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys), r);
  crypto::DlogTable table(params.dlog_range);

  mpc::BitVector message = {1, 1, 0, 0, 1, 0, 1, 1};
  auto shares = mpc::ShareBits(message, 4, prg);
  std::vector<SubshareBundle> bundles;
  for (int x = 0; x < 4; x++) {
    bundles.push_back(EncryptSubshares(shares[x], cert, prg));
  }
  AggregatedColumns agg = AggregateSubshares(bundles, params, prg);
  AggregatedColumns adjusted = AdjustAggregated(agg, r);
  std::vector<mpc::BitVector> dest(4);
  for (int y = 0; y < 4; y++) {
    ASSERT_TRUE(
        RecoverShare(MemberColumn{adjusted.c1, adjusted.c2[y]}, keys.members[y], table, &dest[y]));
  }
  EXPECT_EQ(mpc::ReconstructBits(dest), message);
}

TEST(TransferTest, SerializationRoundTrips) {
  auto prg = crypto::ChaCha20Prg::FromSeed(4);
  constexpr int kBlock = 3;
  constexpr int kBits = 5;
  BlockKeys keys = TransferSetup(kBlock, kBits, prg);
  crypto::U256 r = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys), r);

  Bytes cert_raw = cert.Serialize();
  BlockCertificate cert2 = BlockCertificate::Deserialize(cert_raw);
  ASSERT_EQ(cert2.keys.size(), cert.keys.size());
  for (size_t m = 0; m < cert.keys.size(); m++) {
    for (size_t b = 0; b < cert.keys[m].size(); b++) {
      EXPECT_EQ(cert2.keys[m][b].point, cert.keys[m][b].point);
    }
  }

  mpc::BitVector share = {1, 0, 0, 1, 1};
  SubshareBundle bundle = EncryptSubshares(share, cert, prg);
  Bytes raw = bundle.Serialize();
  EXPECT_EQ(raw.size(), bundle.SerializedSize());
  EXPECT_EQ(raw.size(), (1 + kBlock * kBits) * crypto::EcPoint::kCompressedSize);
  SubshareBundle bundle2 = SubshareBundle::Deserialize(raw, kBlock, kBits);
  EXPECT_EQ(bundle2.c1, bundle.c1);
  for (int m = 0; m < kBlock; m++) {
    for (int b = 0; b < kBits; b++) {
      EXPECT_EQ(bundle2.c2[m][b], bundle.c2[m][b]);
    }
  }
}

TEST(TransferTest, WireSizesMatchAnalyticFormulas) {
  // §5.3's traffic roles: members send (1 + (k+1)L)-point bundles, node i
  // forwards one aggregated bundle of the same size, members of B_j receive
  // constant (1 + L)-point columns.
  auto prg = crypto::ChaCha20Prg::FromSeed(5);
  for (int block_size : {4, 8}) {
    constexpr int kBits = 12;
    BlockKeys keys = TransferSetup(block_size, kBits, prg);
    crypto::U256 r = prg.NextScalar(crypto::CurveOrder());
    BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys), r);
    mpc::BitVector share(kBits, 0);
    SubshareBundle bundle = EncryptSubshares(share, cert, prg);
    EXPECT_EQ(bundle.Serialize().size(),
              static_cast<size_t>(1 + block_size * kBits) * 33);
    TransferParams params;
    params.block_size = block_size;
    params.message_bits = kBits;
    std::vector<SubshareBundle> bundles(block_size, bundle);
    AggregatedColumns agg = AggregateSubshares(bundles, params, prg);
    EXPECT_EQ(agg.Serialize().size(), static_cast<size_t>(1 + block_size * kBits) * 33);
    MemberColumn column{agg.c1, agg.c2[0]};
    EXPECT_EQ(column.Serialize().size(), static_cast<size_t>(1 + kBits) * 33);
  }
}

TEST(TransferTest, NetworkedRolesEndToEnd) {
  // Full networked execution: 2 blocks of 3 members + the two endpoints,
  // nodes 0..7 on a SimNetwork, with overlapping role assignments.
  constexpr int kBlock = 3;
  constexpr int kBits = 6;
  auto prg = crypto::ChaCha20Prg::FromSeed(6);
  TransferParams params;
  params.block_size = kBlock;
  params.message_bits = kBits;
  params.budget_alpha = 0.9;
  params.dlog_range = 512;

  net::SimNetwork net(8);
  // Node 0 = i, node 1 = j; B_i = {0, 2, 3}, B_j = {1, 4, 0} (node 0 plays
  // both source endpoint and receiver member — the session-splitting case).
  std::vector<net::NodeId> block_i = {0, 2, 3};
  std::vector<net::NodeId> block_j = {1, 4, 0};

  BlockKeys keys_j = TransferSetup(kBlock, kBits, prg);
  crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys_j), neighbor_key);
  crypto::DlogTable table(params.dlog_range);

  mpc::BitVector message = {1, 0, 1, 1, 0, 1};
  auto src_shares = mpc::ShareBits(message, kBlock, prg);

  constexpr net::SessionId kSession = 42;
  std::vector<mpc::BitVector> dest_shares(kBlock);
  std::vector<std::thread> threads;
  for (int x = 0; x < kBlock; x++) {
    threads.emplace_back([&, x] {
      auto role_prg = crypto::ChaCha20Prg::FromSeed(900 + x);
      RunSenderMember(&net, block_i[x], 0, kSession, src_shares[x], cert, role_prg);
    });
  }
  threads.emplace_back([&] {
    auto role_prg = crypto::ChaCha20Prg::FromSeed(800);
    RunSourceEndpoint(&net, 0, block_i, 1, kSession, params, role_prg);
  });
  threads.emplace_back(
      [&] { RunDestEndpoint(&net, 1, 0, block_j, kSession, neighbor_key, params); });
  for (int y = 0; y < kBlock; y++) {
    threads.emplace_back([&, y] {
      dest_shares[y] =
          RunReceiverMember(&net, block_j[y], 1, kSession, keys_j.members[y], table, params);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(mpc::ReconstructBits(dest_shares), message);

  // Traffic sanity: node 0 (source endpoint) received the k+1 bundles.
  EXPECT_GE(net.NodeStats(0).bytes_received,
            static_cast<uint64_t>(kBlock) * (1 + kBlock * kBits) * 33);
}

TEST(TransferBatchEngineTest, WireBytesBitIdenticalToSeedPath) {
  // The tentpole fidelity contract: with identical PRG streams, every wire
  // message the batched engine produces is byte-identical to the seed
  // schedule's, across all four roles.
  constexpr int kBlock = 4;
  constexpr int kBits = 6;
  auto setup_prg = crypto::ChaCha20Prg::FromSeed(20);
  TransferParams params;
  params.block_size = kBlock;
  params.message_bits = kBits;
  params.budget_alpha = 0.9;
  params.dlog_range = params.RecommendedDlogRange(1e-12);

  BlockKeys keys = TransferSetup(kBlock, kBits, setup_prg);
  crypto::U256 neighbor_key = setup_prg.NextScalar(crypto::CurveOrder());
  BlockCertificate cert = MakeBlockCertificate(PublicKeysOf(keys), neighbor_key);
  crypto::DlogTable table(params.dlog_range);
  EvenNoiseCache noise(params.dlog_range);

  mpc::BitVector message = {1, 0, 1, 1, 0, 1};
  auto shares = mpc::ShareBits(message, kBlock, setup_prg);

  // Senders: seed path and batched path from identical per-member PRGs.
  std::vector<Bytes> seed_bundles;
  std::vector<SubshareBundle> bundles;
  for (int x = 0; x < kBlock; x++) {
    auto prg = crypto::ChaCha20Prg::FromSeed(500 + x);
    bundles.push_back(EncryptSubshares(shares[x], cert, prg));
    seed_bundles.push_back(bundles.back().Serialize());
  }
  std::vector<crypto::ChaCha20Prg> batch_prgs;
  for (int x = 0; x < kBlock; x++) {
    batch_prgs.push_back(crypto::ChaCha20Prg::FromSeed(500 + x));
  }
  std::vector<Bytes> batch_bundles = EncryptSubsharesWire(shares, cert, batch_prgs);
  ASSERT_EQ(batch_bundles.size(), seed_bundles.size());
  for (int x = 0; x < kBlock; x++) {
    EXPECT_EQ(batch_bundles[x], seed_bundles[x]) << "sender " << x;
  }

  // Source endpoint aggregation + masking.
  auto seed_agg_prg = crypto::ChaCha20Prg::FromSeed(600);
  Bytes seed_agg = AggregateSubshares(bundles, params, seed_agg_prg).Serialize();
  auto batch_agg_prg = crypto::ChaCha20Prg::FromSeed(600);
  Bytes batch_agg = AggregateSubsharesWire(batch_bundles, params, batch_agg_prg, noise);
  EXPECT_EQ(batch_agg, seed_agg);

  // Dest endpoint adjustment + split.
  AggregatedColumns adjusted = AdjustAggregated(
      AggregatedColumns::Deserialize(seed_agg, kBlock, kBits), neighbor_key);
  std::vector<Bytes> batch_columns = AdjustAndSplitWire(batch_agg, neighbor_key, params);
  ASSERT_EQ(batch_columns.size(), static_cast<size_t>(kBlock));
  for (int y = 0; y < kBlock; y++) {
    Bytes seed_column = MemberColumn{adjusted.c1, adjusted.c2[y]}.Serialize();
    EXPECT_EQ(batch_columns[y], seed_column) << "recipient " << y;
  }

  // Receivers: batched recovery agrees with per-member seed recovery and
  // reconstructs the message.
  std::vector<const MemberKeys*> key_ptrs;
  for (int y = 0; y < kBlock; y++) {
    key_ptrs.push_back(&keys.members[y]);
  }
  std::vector<mpc::BitVector> batch_shares;
  ASSERT_TRUE(RecoverSharesWire(batch_columns, key_ptrs, table, params, &batch_shares));
  for (int y = 0; y < kBlock; y++) {
    mpc::BitVector seed_share;
    ASSERT_TRUE(RecoverShare(MemberColumn{adjusted.c1, adjusted.c2[y]}, keys.members[y], table,
                             &seed_share));
    EXPECT_EQ(batch_shares[y], seed_share) << "recipient " << y;
  }
  EXPECT_EQ(mpc::ReconstructBits(batch_shares), message);
}

TEST(TransferBatchEngineTest, NoiseCacheMatchesMulBase) {
  EvenNoiseCache cache(64);
  for (int64_t mask : {int64_t{0}, int64_t{2}, int64_t{-2}, int64_t{128}, int64_t{-128},
                       int64_t{1 << 20}, -int64_t{1 << 20}}) {
    crypto::EcPoint want = crypto::MulBase(crypto::EncodeExponent(mask));
    EXPECT_EQ(crypto::EcPoint::FromAffinePoint(cache.Get(mask)), want) << mask;
  }
}

TEST(TransferTest, EffectiveAlphaFormula) {
  TransferParams params;
  params.block_size = 20;
  params.budget_alpha = 0.9;
  EXPECT_NEAR(params.EffectiveAlpha(), std::pow(0.9, 2.0 / 20), 1e-12);
}

}  // namespace
}  // namespace dstress::transfer
