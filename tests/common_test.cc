#include <gtest/gtest.h>

#include <cmath>

#include "src/common/bytes.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"

namespace dstress {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(HexEncode(data), "0001abff7f");
  EXPECT_EQ(HexDecode("0001abff7f"), data);
  EXPECT_EQ(HexDecode("0001ABFF7F"), data);
  EXPECT_EQ(HexDecode(""), Bytes{});
}

TEST(ByteWriterTest, LittleEndianLayout) {
  ByteWriter w;
  w.U8(0x12);
  w.U16(0x3456);
  w.U32(0x789abcde);
  w.U64(0x0102030405060708ULL);
  EXPECT_EQ(HexEncode(w.bytes()), "125634debc9a780807060504030201");
}

TEST(ByteReaderTest, ReadsBackWriterOutput) {
  ByteWriter w;
  w.U8(7);
  w.U16(1234);
  w.U32(567890);
  w.U64(~0ULL);
  w.Blob({1, 2, 3});
  Bytes raw = w.Take();
  ByteReader r(raw);
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U16(), 1234);
  EXPECT_EQ(r.U32(), 567890u);
  EXPECT_EQ(r.U64(), ~0ULL);
  EXPECT_EQ(r.Blob(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReaderTest, RemainingTracksCursor) {
  Bytes raw = {1, 2, 3, 4};
  ByteReader r(raw);
  EXPECT_EQ(r.remaining(), 4u);
  r.U16();
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(RngTest, Deterministic) {
  Rng a(5);
  Rng b(5);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 100; i++) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(10);
  constexpr double kScale = 3.0;
  constexpr int kTrials = 20000;
  double sum = 0, abs_sum = 0;
  for (int i = 0; i < kTrials; i++) {
    double v = rng.Laplace(kScale);
    sum += v;
    abs_sum += std::fabs(v);
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.15);
  // E|Laplace(b)| = b.
  EXPECT_NEAR(abs_sum / kTrials, kScale, 0.15);
}

TEST(RngTest, GeometricMean) {
  Rng rng(11);
  constexpr double kP = 0.25;
  constexpr int kTrials = 20000;
  double sum = 0;
  for (int i = 0; i < kTrials; i++) {
    int64_t v = rng.Geometric(kP);
    ASSERT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  // E[Geo(p)] = (1-p)/p = 3.
  EXPECT_NEAR(sum / kTrials, 3.0, 0.2);
}

TEST(RngTest, TwoSidedGeometricSymmetry) {
  Rng rng(12);
  constexpr double kAlpha = 0.7;
  constexpr int kTrials = 20000;
  double sum = 0;
  int zeros = 0;
  for (int i = 0; i < kTrials; i++) {
    int64_t v = rng.TwoSidedGeometric(kAlpha);
    sum += static_cast<double>(v);
    zeros += v == 0 ? 1 : 0;
  }
  EXPECT_NEAR(sum / kTrials, 0.0, 0.1);
  // P(0) = (1-a)/(1+a) ~ 0.176.
  EXPECT_NEAR(static_cast<double>(zeros) / kTrials, (1 - kAlpha) / (1 + kAlpha), 0.02);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double sink = 0;
  for (int i = 0; i < 100000; i++) {
    sink += std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(sink, 0.0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  double first = sw.ElapsedSeconds();
  EXPECT_GE(sw.ElapsedSeconds(), first);
  sw.Reset();
  EXPECT_LE(sw.ElapsedSeconds(), first + 1.0);
}

}  // namespace
}  // namespace dstress
