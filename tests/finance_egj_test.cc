#include "src/finance/elliott_golub_jackson.h"

#include <gtest/gtest.h>

#include "src/finance/workload.h"
#include "src/graph/generators.h"

namespace dstress::finance {
namespace {

EgjProgramParams DefaultParams(const graph::Graph& g, int iterations) {
  EgjProgramParams params;
  params.degree_bound = std::max(1, g.MaxDegree());
  params.iterations = iterations;
  return params;
}

TEST(EgjModelTest, IsolatedBankKeepsBaseValue) {
  graph::Graph g(2);
  g.AddEdge(0, 1);  // bank 1 holds a (zero) share of bank 0
  EgjInstance instance;
  instance.graph = &g;
  instance.base = {100, 80};
  instance.orig_val = {100, 80};
  instance.threshold = {10, 10};
  instance.penalty = {5, 5};
  instance.insh = {{}, {0}};
  EgjProgramParams params = DefaultParams(g, 3);
  std::vector<uint64_t> values;
  uint64_t tds = EgjSolveFixed(instance, params, &values);
  EXPECT_EQ(values[0], 100u);
  EXPECT_EQ(values[1], 80u);
  EXPECT_EQ(tds, 0u);
}

TEST(EgjModelTest, CrossHoldingPropagatesValue) {
  // Bank 1 holds 50% of bank 0 (orig val 100): its valuation includes 50.
  FixedPointFormat fmt;
  graph::Graph g(2);
  g.AddEdge(0, 1);
  EgjInstance instance;
  instance.graph = &g;
  instance.base = {100, 40};
  instance.orig_val = {100, 90};
  instance.threshold = {0, 0};
  instance.penalty = {0, 0};
  instance.insh = {{}, {fmt.FracFromDouble(0.5)}};
  EgjProgramParams params = DefaultParams(g, 3);
  std::vector<uint64_t> values;
  EgjSolveFixed(instance, params, &values);
  EXPECT_EQ(values[0], 100u);
  EXPECT_EQ(values[1], 90u);  // 40 + 0.5*100
}

TEST(EgjModelTest, PenaltyAppliesBelowThreshold) {
  FixedPointFormat fmt;
  graph::Graph g(2);
  g.AddEdge(0, 1);
  EgjInstance instance;
  instance.graph = &g;
  instance.base = {20, 40};  // bank 0 shocked below its threshold
  instance.orig_val = {100, 90};
  instance.threshold = {50, 30};
  instance.penalty = {15, 10};
  instance.insh = {{}, {fmt.FracFromDouble(0.5)}};
  EgjProgramParams params = DefaultParams(g, 4);
  std::vector<uint64_t> values;
  uint64_t tds = EgjSolveFixed(instance, params, &values);
  // Bank 0: value 20 < 50 -> 20 - 15 = 5.
  EXPECT_EQ(values[0], 5u);
  // Bank 1: 40 + 0.5 * (value0/orig0)*orig0; discount = 1 - 5/100 = 0.95 ->
  // holding ~ 0.5*5 = 2 (fixed point rounding), value ~42 > threshold 30.
  EXPECT_GE(values[1], 41u);
  EXPECT_LE(values[1], 43u);
  // TDS counts only bank 0's gap: 50 - 5 = 45.
  EXPECT_EQ(tds, 45u);
}

TEST(EgjModelTest, FixedTracksExactSolver) {
  Rng rng(11);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 30;
  topo.core_size = 6;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 6;
  ShockParams shock;
  shock.shocked_banks = {0, 1};
  EgjInstance instance = MakeEgjWorkload(g, wp, shock);
  EgjProgramParams params = DefaultParams(g, 6);
  uint64_t fixed_tds = EgjSolveFixed(instance, params);
  double exact_tds = EgjSolveExact(instance, 6, params.format);
  double tolerance = 0.10 * std::max(exact_tds, 50.0) + 40;
  EXPECT_NEAR(static_cast<double>(fixed_tds), exact_tds, tolerance);
}

TEST(EgjModelTest, NoShockNoFailuresOnGeneratedWorkload) {
  // The workload calibrates orig_val as the no-shock fixpoint, so without a
  // shock every bank stays at its threshold-clearing valuation.
  Rng rng(12);
  graph::Graph g = graph::GenerateErdosRenyi(20, 0.15, rng);
  WorkloadParams wp;
  EgjInstance instance = MakeEgjWorkload(g, wp, ShockParams{});
  EgjProgramParams params = DefaultParams(g, 6);
  EXPECT_EQ(EgjSolveFixed(instance, params), 0u);
}

TEST(EgjModelTest, CascadeScenario) {
  // Appendix C's second scenario: shocking several core banks produces a
  // much larger TDS than shocking peripheral banks, because core failures
  // cascade.
  Rng rng(13);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 50;
  topo.core_size = 10;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 10;
  wp.cross_holding = 0.3;
  wp.threshold_ratio = 0.8;
  wp.penalty_ratio = 0.4;

  ShockParams periphery_shock;
  periphery_shock.shocked_banks = {45, 46, 47};
  ShockParams core_shock;
  core_shock.shocked_banks = {0, 1, 2};

  EgjProgramParams params = DefaultParams(g, 6);
  uint64_t periphery_tds = EgjSolveFixed(MakeEgjWorkload(g, wp, periphery_shock), params);
  uint64_t core_tds = EgjSolveFixed(MakeEgjWorkload(g, wp, core_shock), params);
  EXPECT_GT(core_tds, 2 * periphery_tds);
}

TEST(EgjModelTest, ValuesDecreaseMonotonicallyOverIterations) {
  // Hemenway–Khanna: the iteration converges monotonically from above.
  Rng rng(14);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 25;
  topo.core_size = 5;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 5;
  wp.threshold_ratio = 0.8;
  ShockParams shock;
  shock.shocked_banks = {0, 1};
  EgjInstance instance = MakeEgjWorkload(g, wp, shock);

  std::vector<uint64_t> prev;
  for (int iters = 0; iters <= 6; iters++) {
    EgjProgramParams params = DefaultParams(g, iters);
    std::vector<uint64_t> values;
    EgjSolveFixed(instance, params, &values);
    if (!prev.empty()) {
      for (size_t v = 0; v < values.size(); v++) {
        EXPECT_LE(values[v], prev[v] + 1) << "vertex " << v << " at iter " << iters;
      }
    }
    prev = values;
  }
}

TEST(EgjCircuitTest, UpdateCircuitMatchesFixedSolverOneStep) {
  FixedPointFormat fmt;
  graph::Graph g(2);
  g.AddEdge(0, 1);
  EgjInstance instance;
  instance.graph = &g;
  instance.base = {20, 40};
  instance.orig_val = {100, 90};
  instance.threshold = {50, 30};
  instance.penalty = {15, 10};
  instance.insh = {{}, {fmt.FracFromDouble(0.5)}};
  EgjProgramParams params = DefaultParams(g, 1);
  core::VertexProgram program = MakeEgjProgram(params);
  circuit::Circuit update = core::BuildUpdateCircuit(program);
  auto states = MakeEgjInitialStates(instance, params);

  const int w = params.format.value_bits;
  // Bank 0's first update with ⊥ (=0 discount) messages.
  mpc::BitVector input = states[0];
  for (int d = 0; d < params.degree_bound; d++) {
    mpc::AppendBits(&input, mpc::WordToBits(0, program.message_bits));
  }
  auto out = update.Eval(input);
  uint64_t value = mpc::BitsToWord(out, 2 * static_cast<size_t>(w), w);
  EXPECT_EQ(value, 5u);  // 20 < 50 -> 20 - 15
  // Outgoing discount: 1 - 5/100 in Q0.8 = 256 - floor(5*256/100) = 256-12.
  uint64_t msg = mpc::BitsToWord(out, static_cast<size_t>(program.state_bits), w);
  EXPECT_EQ(msg, 256u - (5u << 8) / 100u);
}

TEST(EgjWorkloadTest, OrigValIsSelfConsistentFixpoint) {
  Rng rng(15);
  graph::Graph g = graph::GenerateErdosRenyi(15, 0.2, rng);
  WorkloadParams wp;
  EgjInstance instance = MakeEgjWorkload(g, wp, ShockParams{});
  // orig_val ~ base + sum of insh * orig_val of in-neighbors.
  for (int v = 0; v < g.num_vertices(); v++) {
    double expected = static_cast<double>(instance.base[v]);
    for (int d = 0; d < g.InDegree(v); d++) {
      expected += wp.format.FracToDouble(instance.insh[v][d]) *
                  static_cast<double>(instance.orig_val[g.InNeighbors(v)[d]]);
    }
    EXPECT_NEAR(static_cast<double>(instance.orig_val[v]), expected,
                0.02 * expected + 2.0)
        << v;
  }
}

TEST(EgjWorkloadTest, IssuedSharesAreCapped) {
  Rng rng(16);
  graph::Graph g = graph::GenerateScaleFree(40, 3, rng);
  WorkloadParams wp;
  wp.cross_holding = 0.5;  // aggressive: forces the cap to engage
  EgjInstance instance = MakeEgjWorkload(g, wp, ShockParams{});
  std::vector<double> issued(g.num_vertices(), 0.0);
  for (int v = 0; v < g.num_vertices(); v++) {
    for (int d = 0; d < g.InDegree(v); d++) {
      issued[g.InNeighbors(v)[d]] += wp.format.FracToDouble(instance.insh[v][d]);
    }
  }
  for (int v = 0; v < g.num_vertices(); v++) {
    EXPECT_LE(issued[v], 0.85) << v;  // cap 0.8 plus rounding slack
  }
}

}  // namespace
}  // namespace dstress::finance
