#include "src/cli/scenario.h"

#include <gtest/gtest.h>

#include <fstream>

namespace dstress::cli {
namespace {

TEST(ScenarioParseTest, FullScenarioRoundTrips) {
  std::string error;
  auto scenario = ParseScenario(R"(
# comment line
network core_periphery 50 10
model egj
iterations 6
block_size 8
epsilon 0.5
leverage 0.2
shock 0 1 2
seed 99
)",
                                &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology, Topology::kCorePeriphery);
  EXPECT_EQ(scenario->num_vertices, 50);
  EXPECT_EQ(scenario->core_size, 10);
  EXPECT_EQ(scenario->model, Model::kElliottGolubJackson);
  EXPECT_EQ(scenario->iterations, 6);
  EXPECT_EQ(scenario->block_size, 8);
  EXPECT_DOUBLE_EQ(scenario->epsilon, 0.5);
  EXPECT_DOUBLE_EQ(scenario->leverage, 0.2);
  EXPECT_EQ(scenario->shocked_banks, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(scenario->seed, 99u);
}

TEST(ScenarioParseTest, DefaultsApply) {
  std::string error;
  auto scenario = ParseScenario("network scale_free 20 2\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->model, Model::kEisenbergNoe);
  EXPECT_EQ(scenario->iterations, 0);
  EXPECT_EQ(scenario->block_size, 4);
}

TEST(ScenarioParseTest, ExplicitEdges) {
  std::string error;
  auto scenario = ParseScenario(R"(
network explicit 4
edge 0 1
edge 1 2
edge 2 3
)",
                                &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  graph::Graph g = BuildScenarioGraph(*scenario);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(ScenarioParseTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* expected_fragment;
  };
  const Case cases[] = {
      {"network core_periphery 10\n", "line 1"},
      {"network core_periphery 10 20\n", "core_size exceeds N"},
      {"network scale_free 20 2\nmodel xx\n", "model must be"},
      {"network scale_free 20 2\nfrobnicate 1\n", "unknown directive"},
      {"network scale_free 20 2\nepsilon -1\n", "epsilon must be positive"},
      {"network scale_free 20 2\nleverage 0\n", "leverage must be in"},
      {"network scale_free 20 2\nedge 0 1\n", "network explicit"},
      {"network explicit 3\nedge 0 3\n", "out of range"},
      {"network explicit 3\nedge 1 1\n", "out of range"},
      {"network scale_free 20 2\nshock 25\n", "out of range"},
      {"network scale_free 20 2\niterations x\n", "bad integer"},
      {"model en\n", "missing a 'network'"},
      {"", "missing a 'network'"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto scenario = ParseScenario(c.text, &error);
    EXPECT_FALSE(scenario.has_value()) << c.text;
    EXPECT_NE(error.find(c.expected_fragment), std::string::npos)
        << "input: " << c.text << "\nerror: " << error;
  }
}

TEST(ScenarioParseTest, CommentsAndBlankLinesIgnored) {
  std::string error;
  auto scenario = ParseScenario("\n\n# header\nnetwork erdos_renyi 8 0.5   # trailing\n\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->topology, Topology::kErdosRenyi);
  EXPECT_DOUBLE_EQ(scenario->edge_probability, 0.5);
}

TEST(ScenarioIterationsTest, AutoRuleIsCeilLog2) {
  Scenario s;
  s.num_vertices = 50;
  EXPECT_EQ(ScenarioIterations(s), 6);  // 2^6 = 64 >= 50
  s.num_vertices = 64;
  EXPECT_EQ(ScenarioIterations(s), 6);
  s.num_vertices = 65;
  EXPECT_EQ(ScenarioIterations(s), 7);
  s.iterations = 3;
  EXPECT_EQ(ScenarioIterations(s), 3);  // explicit wins
}

TEST(ScenarioGraphTest, TopologiesRespectSizes) {
  std::string error;
  for (const char* text : {
           "network core_periphery 24 5\n",
           "network scale_free 24 2\n",
           "network erdos_renyi 24 0.2\n",
       }) {
    auto scenario = ParseScenario(text, &error);
    ASSERT_TRUE(scenario.has_value()) << error;
    graph::Graph g = BuildScenarioGraph(*scenario);
    EXPECT_EQ(g.num_vertices(), 24) << text;
    EXPECT_GT(g.num_edges(), 0) << text;
  }
}

TEST(ScenarioGraphTest, SameSeedSameGraph) {
  std::string error;
  auto scenario = ParseScenario("network scale_free 30 2\nseed 5\n", &error);
  ASSERT_TRUE(scenario.has_value());
  graph::Graph a = BuildScenarioGraph(*scenario);
  graph::Graph b = BuildScenarioGraph(*scenario);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(ScenarioParseTest, NetworkFromEdgeListFile) {
  std::string path = ::testing::TempDir() + "/topology.edges";
  {
    std::ofstream out(path);
    out << "graph 4\n0 1\n1 2\n2 3\n3 0\n";
  }
  std::string error;
  auto scenario = ParseScenario("network file " + path + "\nshock 2\n", &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->num_vertices, 4);
  graph::Graph g = BuildScenarioGraph(*scenario);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.HasEdge(3, 0));

  auto missing = ParseScenario("network file /nonexistent/x.edges\n", &error);
  EXPECT_FALSE(missing.has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(ScenarioRunTest, EndToEndEnAndEgj) {
  for (const char* model : {"en", "egj"}) {
    std::string text = std::string("network core_periphery 10 3\nmodel ") + model +
                       "\niterations 3\nblock_size 3\nshock 0\nseed 4\n";
    std::string error;
    auto scenario = ParseScenario(text, &error);
    ASSERT_TRUE(scenario.has_value()) << error;
    ScenarioResult result = RunScenario(*scenario);
    EXPECT_EQ(result.iterations, 3);
    EXPECT_GT(result.seconds, 0.0);
    // The released figure is the reference plus bounded geometric noise;
    // with eps=0.23 and sensitivity<=20 the tail beyond 2000 units is
    // negligible (P < 1e-10).
    EXPECT_NEAR(static_cast<double>(result.released_tds),
                static_cast<double>(result.reference_tds), 2000.0)
        << model;
    std::string report = FormatReport(*scenario, result);
    EXPECT_NE(report.find("released TDS"), std::string::npos);
  }
}

}  // namespace
}  // namespace dstress::cli
