#include "src/cli/scenario.h"

#include <gtest/gtest.h>

#include <fstream>

#include "src/engine/engine.h"

namespace dstress::cli {
namespace {

TEST(ScenarioParseTest, FullScenarioRoundTrips) {
  std::string error;
  auto spec = ParseScenario(R"(
# comment line
network core_periphery 50 10
degree_cap 9
model egj
mode cleartext
transport tcp
iterations 6
block_size 8
fanout 16
epsilon 0.5
leverage 0.2
shock 0 1 2
triples ot
ot_batching off
transfer_batching off
graph_plane legacy
early_exit on
seed 99
)",
                            &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->topology.kind, engine::TopologySpec::Kind::kCorePeriphery);
  EXPECT_EQ(spec->topology.num_vertices, 50);
  EXPECT_EQ(spec->topology.core_size, 10);
  EXPECT_EQ(spec->topology.degree_cap, 9);
  EXPECT_EQ(spec->model, engine::ContagionModel::kElliottGolubJackson);
  EXPECT_EQ(spec->mode, engine::ExecutionMode::kCleartextFast);
  EXPECT_EQ(spec->transport.backend, "tcp");
  EXPECT_EQ(spec->iterations, 6);
  EXPECT_EQ(spec->block_size, 8);
  EXPECT_EQ(spec->aggregation_fanout, 16);
  EXPECT_DOUBLE_EQ(spec->epsilon, 0.5);
  EXPECT_DOUBLE_EQ(spec->leverage, 0.2);
  EXPECT_EQ(spec->shock.shocked_banks, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(spec->use_ot_triples);
  EXPECT_FALSE(spec->ot_batching);
  EXPECT_FALSE(spec->transfer_batching);
  EXPECT_FALSE(spec->cleartext_arena);
  EXPECT_TRUE(spec->cleartext_early_exit);
  EXPECT_EQ(spec->seed, 99u);
}

TEST(ScenarioParseTest, DefaultsApply) {
  std::string error;
  auto spec = ParseScenario("network scale_free 20 2\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->model, engine::ContagionModel::kEisenbergNoe);
  EXPECT_EQ(spec->mode, engine::ExecutionMode::kSecure);
  EXPECT_EQ(spec->transport.backend, "sim");
  EXPECT_EQ(spec->iterations, 0);
  EXPECT_EQ(spec->block_size, 4);
  EXPECT_EQ(spec->aggregation_fanout, 0);
  EXPECT_FALSE(spec->use_ot_triples);
  EXPECT_TRUE(spec->ot_batching);
  EXPECT_TRUE(spec->transfer_batching);
  EXPECT_TRUE(spec->cleartext_arena);
  EXPECT_FALSE(spec->cleartext_early_exit);
}

TEST(ScenarioParseTest, ExplicitEdges) {
  std::string error;
  auto spec = ParseScenario(R"(
network explicit 4
edge 0 1
edge 1 2
edge 2 3
)",
                            &error);
  ASSERT_TRUE(spec.has_value()) << error;
  graph::Graph g = engine::BuildTopologyGraph(spec->topology, spec->seed);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(ScenarioParseTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* expected_fragment;
  };
  const Case cases[] = {
      {"network core_periphery 10\n", "line 1"},
      {"network core_periphery 10 20\n", "core_size exceeds N"},
      {"network scale_free 20 2\nmodel xx\n", "model must be"},
      {"network scale_free 20 2\nmode tls\n", "mode must be 'secure' or 'cleartext'"},
      {"network scale_free 20 2\nmode cleartext fast\n", "expected 1 argument"},
      {"network scale_free 20 2\ntransport pigeon\n", "transport must be 'sim' or 'tcp'"},
      {"network scale_free 20 2\ntransport\n", "usage: transport"},
      {"network scale_free 20 2\ntransport sim 127.0.0.1:7000\n", "takes no rendezvous"},
      {"network scale_free 20 2\ntransport tcp 127.0.0.1\n", "explicit port"},
      {"network scale_free 20 2\ntransport tcp :7000\n", "empty host"},
      {"network scale_free 20 2\ntransport tcp 127.0.0.1:x\n", "bad endpoint"},
      {"network scale_free 20 2\ntransport tcp 127.0.0.1:99999\n", "bad endpoint"},
      {"network scale_free 20 2\nnode 0\n", "expected 2 argument"},
      {"network scale_free 20 2\nnode 0 10.0.0.1\n", "require 'transport tcp'"},
      {"network scale_free 20 2\ntransport tcp\nnode 0 10.0.0.1\n", "fixed rendezvous port"},
      {"network scale_free 4 2\ntransport tcp 0.0.0.0:7000\nnode 4 10.0.0.1\n", "out of range"},
      {"network scale_free 20 2\ntransport tcp 0.0.0.0:7000\nnode 1 10.0.0.1\nnode 1 10.0.0.2\n",
       "already placed on line 3"},
      {"network scale_free 20 2\ntransport tcp driver.internal:7000\n",
       "not a numeric IPv4 address"},
      {"network scale_free 20 2\ntransport tcp 0.0.0.0:7000\nnode 0 bank-host-1\n",
       "not a numeric IPv4 address"},
      {"network scale_free 20 2\nfanout x\n", "bad integer"},
      {"network scale_free 20 2\nfanout 1\n", "fanout must be 0"},
      {"network scale_free 20 2\ndegree_cap 0\n", "bad integer"},
      {"network scale_free 20 2\nfrobnicate 1\n", "unknown directive"},
      {"network scale_free 20 2\ntransfer_batching maybe\n", "transfer_batching must be"},
      {"network scale_free 20 2\ntriples maybe\n", "triples must be"},
      {"network scale_free 20 2\not_batching maybe\n", "ot_batching must be"},
      {"network scale_free 20 2\ntriples ot\nha checkpoint_every 1\n",
       "cannot be combined with HA checkpoint/resume"},
      {"network scale_free 20 2\ngraph_plane vector\n", "graph_plane must be"},
      {"network scale_free 20 2\nearly_exit maybe\n", "early_exit must be"},
      {"network scale_free 20 2\nepsilon -1\n", "epsilon must be positive"},
      {"network scale_free 20 2\nleverage 0\n", "leverage must be in"},
      {"network scale_free 20 2\nedge 0 1\n", "network explicit"},
      {"network explicit 3\nedge 0 3\n", "out of range"},
      {"network explicit 3\nedge 1 1\n", "out of range"},
      {"network scale_free 20 2\nshock 25\n", "out of range"},
      {"network scale_free 20 2\niterations x\n", "bad integer"},
      {"model en\n", "missing a 'network'"},
      {"", "missing a 'network'"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto spec = ParseScenario(c.text, &error);
    EXPECT_FALSE(spec.has_value()) << c.text;
    EXPECT_NE(error.find(c.expected_fragment), std::string::npos)
        << "input: " << c.text << "\nerror: " << error;
  }
}

TEST(ScenarioParseTest, MultiMachineNodeDirectives) {
  std::string error;
  auto spec = ParseScenario(R"(
network core_periphery 4 2
transport tcp 0.0.0.0:7400
node 0 10.0.0.10:7411
node 1 10.0.0.11:7411
node 2 10.0.0.12       # port left to the OS
seed 3
)",
                            &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->transport.backend, "tcp");
  EXPECT_EQ(spec->transport.host, "0.0.0.0");
  EXPECT_EQ(spec->transport.port, 7400);
  EXPECT_TRUE(spec->transport.external_nodes);
  ASSERT_EQ(spec->transport.node_endpoints.size(), 4u);
  EXPECT_EQ(spec->transport.node_endpoints[0], (net::PeerEndpoint{"10.0.0.10", 7411}));
  EXPECT_EQ(spec->transport.node_endpoints[1], (net::PeerEndpoint{"10.0.0.11", 7411}));
  EXPECT_EQ(spec->transport.node_endpoints[2], (net::PeerEndpoint{"10.0.0.12", 0}));
  // Bank 3 has no `node` line: any advertised endpoint is accepted.
  EXPECT_EQ(spec->transport.node_endpoints[3], (net::PeerEndpoint{}));
}

TEST(ScenarioParseTest, TcpRendezvousAddressWithoutNodeDirectives) {
  // A fixed rendezvous address alone keeps the driver in spawn-local mode:
  // external_nodes engages only through `node` directives.
  std::string error;
  auto spec = ParseScenario("network scale_free 8 2\ntransport tcp 127.0.0.1:7500\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->transport.host, "127.0.0.1");
  EXPECT_EQ(spec->transport.port, 7500);
  EXPECT_FALSE(spec->transport.external_nodes);
  EXPECT_TRUE(spec->transport.node_endpoints.empty());
}

TEST(ScenarioParseTest, CommentsAndBlankLinesIgnored) {
  std::string error;
  auto spec = ParseScenario("\n\n# header\nnetwork erdos_renyi 8 0.5   # trailing\n\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->topology.kind, engine::TopologySpec::Kind::kErdosRenyi);
  EXPECT_DOUBLE_EQ(spec->topology.edge_probability, 0.5);
}

TEST(ScenarioGraphTest, TopologiesRespectSizes) {
  std::string error;
  for (const char* text : {
           "network core_periphery 24 5\n",
           "network scale_free 24 2\n",
           "network erdos_renyi 24 0.2\n",
       }) {
    auto spec = ParseScenario(text, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(spec->topology.num_vertices, 24) << text;
    graph::Graph g = engine::BuildTopologyGraph(spec->topology, spec->seed);
    EXPECT_EQ(g.num_vertices(), 24) << text;
    EXPECT_GT(g.num_edges(), 0) << text;
  }
}

TEST(ScenarioGraphTest, SameSeedSameGraph) {
  std::string error;
  auto spec = ParseScenario("network scale_free 30 2\nseed 5\n", &error);
  ASSERT_TRUE(spec.has_value());
  graph::Graph a = engine::BuildTopologyGraph(spec->topology, spec->seed);
  graph::Graph b = engine::BuildTopologyGraph(spec->topology, spec->seed);
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(ScenarioParseTest, NetworkFromEdgeListFile) {
  std::string path = ::testing::TempDir() + "/topology.edges";
  {
    std::ofstream out(path);
    out << "graph 4\n0 1\n1 2\n2 3\n3 0\n";
  }
  std::string error;
  auto spec = ParseScenario("network file " + path + "\nshock 2\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->topology.num_vertices, 4);
  graph::Graph g = engine::BuildTopologyGraph(spec->topology, spec->seed);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_TRUE(g.HasEdge(3, 0));

  auto missing = ParseScenario("network file /nonexistent/x.edges\n", &error);
  EXPECT_FALSE(missing.has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(ScenarioRunTest, EndToEndEnAndEgj) {
  for (const char* model : {"en", "egj"}) {
    std::string text = std::string("network core_periphery 10 3\nmodel ") + model +
                       "\niterations 3\nblock_size 3\nshock 0\nseed 4\n";
    std::string error;
    auto spec = ParseScenario(text, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    engine::Engine engine(*spec);
    engine::RunReport report = engine.Run();
    EXPECT_EQ(report.iterations, 3);
    ASSERT_TRUE(report.has_reference);
    EXPECT_GT(report.metrics.total_seconds, 0.0);
    // The released figure is the reference plus bounded geometric noise;
    // with eps=0.23 and sensitivity<=20 the tail beyond 2000 units is
    // negligible (P < 1e-10).
    EXPECT_NEAR(static_cast<double>(report.released),
                static_cast<double>(report.reference), 2000.0)
        << model;
    std::string formatted = engine::FormatReport(*spec, report);
    EXPECT_NE(formatted.find("released TDS"), std::string::npos);
  }
}

TEST(ScenarioParseTest, DuplicateShockedBankRejected) {
  std::string error;
  auto spec = ParseScenario("network core_periphery 10 3\nshock 0 3 3\n", &error);
  EXPECT_FALSE(spec.has_value());
  EXPECT_NE(error.find("duplicate shocked bank 3"), std::string::npos) << error;
}

TEST(ScenarioParseTest, EnsembleDirectivesRoundTrip) {
  std::string error;
  auto spec = ParseScenario(
      "network scale_free 20 2\n"
      "mode cleartext\n"
      "shock 0\n"
      "ensemble shock_draws 16 seed 7\n"
      "ensemble shock_magnitude_range 0.1 0.6\n"
      "ensemble banks_per_draw 2\n"
      "ensemble perturb_workload on\n"
      "ensemble budget 4.0\n",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_TRUE(spec->ensemble.has_value());
  EXPECT_EQ(spec->ensemble->shock_draws, 16);
  EXPECT_EQ(spec->ensemble->draw_seed, 7u);
  EXPECT_TRUE(spec->ensemble->has_magnitude_range);
  EXPECT_DOUBLE_EQ(spec->ensemble->magnitude_lo, 0.1);
  EXPECT_DOUBLE_EQ(spec->ensemble->magnitude_hi, 0.6);
  EXPECT_EQ(spec->ensemble->banks_per_draw, 2);
  EXPECT_TRUE(spec->ensemble->perturb_workload);
  EXPECT_DOUBLE_EQ(spec->ensemble->epsilon_budget, 4.0);
  EXPECT_EQ(spec->ensemble->Width(), 16);
}

TEST(ScenarioParseTest, EnsembleExplicitScenarios) {
  std::string error;
  auto spec = ParseScenario(
      "network core_periphery 10 3\n"
      "ensemble scenario 0\n"
      "ensemble scenario 1 2\n",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_TRUE(spec->ensemble.has_value());
  ASSERT_EQ(spec->ensemble->scenarios.size(), 2u);
  EXPECT_EQ(spec->ensemble->scenarios[0].shock.shocked_banks, (std::vector<int>{0}));
  EXPECT_EQ(spec->ensemble->scenarios[1].shock.shocked_banks, (std::vector<int>{1, 2}));
}

TEST(ScenarioParseTest, EnsembleValidationErrors) {
  struct Case {
    const char* text;
    const char* want;
  };
  const Case cases[] = {
      {"network core_periphery 10 3\nensemble scenario 0 0\n", "duplicate shocked bank 0"},
      {"network core_periphery 10 3\nensemble budget 1\n",
       "needs 'ensemble scenario' lines or 'ensemble shock_draws'"},
      {"network core_periphery 10 3\nensemble scenario 0\n"
       "ensemble shock_draws 4 seed 1\n",
       "cannot mix"},
      {"network core_periphery 10 3\nensemble scenario 0\n"
       "ensemble banks_per_draw 2\n",
       "'ensemble shock_draws'"},
      {"network core_periphery 10 3\nensemble scenario 12\n", "out of range"},
      {"network core_periphery 10 3\nfanout 2\nensemble scenario 0\nensemble scenario 1\n",
       "requires flat aggregation (fanout 0)"},
  };
  for (const Case& c : cases) {
    std::string error;
    auto spec = ParseScenario(c.text, &error);
    EXPECT_FALSE(spec.has_value()) << c.text;
    EXPECT_NE(error.find(c.want), std::string::npos)
        << "wanted '" << c.want << "' in: " << error;
  }
}

TEST(ScenarioRunTest, CleartextModeRunsTheSameScenario) {
  std::string error;
  auto spec = ParseScenario(
      "network core_periphery 10 3\nmode cleartext\niterations 3\nshock 0\nseed 4\n", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  engine::Engine engine(*spec);
  engine::RunReport report = engine.Run();
  ASSERT_TRUE(report.has_reference);
  EXPECT_EQ(report.mode, engine::ExecutionMode::kCleartextFast);
  EXPECT_NEAR(static_cast<double>(report.released), static_cast<double>(report.reference),
              2000.0);
  EXPECT_GT(report.metrics.total_bytes, 0u);
}

}  // namespace
}  // namespace dstress::cli
