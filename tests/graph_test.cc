#include <gtest/gtest.h>

#include <queue>

#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace dstress::graph {
namespace {

TEST(GraphTest, AddAndQueryEdges) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.InDegree(2), 2);
  EXPECT_EQ(g.MaxDegree(), 2);
}

TEST(GraphTest, DuplicateEdgesIgnored) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, EdgesAreDeterministicallyOrdered) {
  Graph g(4);
  g.AddEdge(2, 0);
  g.AddEdge(0, 3);
  g.AddEdge(0, 1);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], std::make_pair(0, 3));
  EXPECT_EQ(edges[1], std::make_pair(0, 1));
  EXPECT_EQ(edges[2], std::make_pair(2, 0));
}

TEST(GraphTest, DegreeBuckets) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(0, 3);
  g.AddEdge(1, 0);
  auto buckets = DegreeBuckets(g, {1, 2});
  EXPECT_EQ(buckets[0], 2);  // degree 3 -> unbounded bucket
  EXPECT_EQ(buckets[1], 0);  // degree 1
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 0);
}

bool IsWeaklyConnected(const Graph& g) {
  std::vector<bool> seen(g.num_vertices(), false);
  std::queue<int> frontier;
  frontier.push(0);
  seen[0] = true;
  int count = 1;
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    auto visit = [&](int u) {
      if (!seen[u]) {
        seen[u] = true;
        count++;
        frontier.push(u);
      }
    };
    for (int u : g.OutNeighbors(v)) {
      visit(u);
    }
    for (int u : g.InNeighbors(v)) {
      visit(u);
    }
  }
  return count == g.num_vertices();
}

TEST(GeneratorsTest, CorePeripheryStructure) {
  Rng rng(1);
  CorePeripheryParams params;
  params.num_vertices = 50;
  params.core_size = 10;
  Graph g = GenerateCorePeriphery(params, rng);
  EXPECT_TRUE(IsWeaklyConnected(g));
  // Edges are symmetric.
  for (auto [u, v] : g.Edges()) {
    EXPECT_TRUE(g.HasEdge(v, u)) << u << "->" << v;
  }
  // Core banks have higher average degree than peripheral banks.
  double core_degree = 0, periphery_degree = 0;
  for (int v = 0; v < params.core_size; v++) {
    core_degree += g.OutDegree(v);
  }
  for (int v = params.core_size; v < params.num_vertices; v++) {
    periphery_degree += g.OutDegree(v);
  }
  core_degree /= params.core_size;
  periphery_degree /= (params.num_vertices - params.core_size);
  EXPECT_GT(core_degree, 2 * periphery_degree);
  // Peripheral banks link only to the core.
  for (int v = params.core_size; v < params.num_vertices; v++) {
    for (int u : g.OutNeighbors(v)) {
      EXPECT_LT(u, params.core_size) << "peripheral " << v << " linked to peripheral " << u;
    }
    EXPECT_LE(g.OutDegree(v), params.max_core_links);
  }
}

TEST(GeneratorsTest, ScaleFreeHasHubs) {
  Rng rng(2);
  Graph g = GenerateScaleFree(200, 2, rng);
  EXPECT_TRUE(IsWeaklyConnected(g));
  int max_degree = g.MaxDegree();
  double avg_degree = 2.0 * g.num_edges() / (2 * g.num_vertices());
  // Preferential attachment produces hubs far above the mean degree.
  EXPECT_GT(max_degree, 4 * avg_degree);
}

TEST(GeneratorsTest, ErdosRenyiDensityMatchesProbability) {
  Rng rng(3);
  constexpr int kN = 100;
  constexpr double kP = 0.1;
  Graph g = GenerateErdosRenyi(kN, kP, rng);
  double pairs = kN * (kN - 1) / 2.0;
  double selected = g.num_edges() / 2.0;  // both directions added
  EXPECT_NEAR(selected / pairs, kP, 0.03);
}

TEST(GeneratorsTest, GeneratorsAreDeterministicPerSeed) {
  Rng a(7), b(7);
  CorePeripheryParams params;
  Graph g1 = GenerateCorePeriphery(params, a);
  Graph g2 = GenerateCorePeriphery(params, b);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(GeneratorsTest, CapDegreeEnforcesBound) {
  Rng rng(4);
  Graph g = GenerateScaleFree(100, 3, rng);
  ASSERT_GT(g.MaxDegree(), 8);
  Graph capped = CapDegree(g, 8);
  EXPECT_LE(capped.MaxDegree(), 8);
  EXPECT_LT(capped.num_edges(), g.num_edges());
  // Capping only removes edges, never adds.
  for (auto [u, v] : capped.Edges()) {
    EXPECT_TRUE(g.HasEdge(u, v));
  }
}

class CorePeripherySizeTest : public ::testing::TestWithParam<int> {};

TEST_P(CorePeripherySizeTest, AllSizesConnectedAndSymmetric) {
  int n = GetParam();
  Rng rng(n);
  CorePeripheryParams params;
  params.num_vertices = n;
  params.core_size = std::max(2, n / 5);
  Graph g = GenerateCorePeriphery(params, rng);
  EXPECT_TRUE(IsWeaklyConnected(g));
  for (auto [u, v] : g.Edges()) {
    EXPECT_TRUE(g.HasEdge(v, u));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CorePeripherySizeTest, ::testing::Values(10, 20, 50, 100, 200));

}  // namespace
}  // namespace dstress::graph
