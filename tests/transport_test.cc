// Interface-conformance tests for net::Transport, exercised through the
// SimNetwork backend via a Transport* (tcp_network_test.cc re-runs the
// same semantics over the TCP backend), plus the TransportSpec registry
// that selects backends by name.
#include "src/net/transport.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/net/channel.h"
#include "src/net/sim_network.h"
#include "src/net/transport_spec.h"

namespace dstress::net {
namespace {

TEST(TransportTest, FifoPerSessionThroughBasePointer) {
  SimNetwork sim(2);
  Transport* net = &sim;
  for (uint8_t i = 0; i < 10; i++) {
    net->Send(0, 1, Bytes{i}, /*session=*/7);
  }
  for (uint8_t i = 0; i < 10; i++) {
    EXPECT_EQ(net->Recv(1, 0, /*session=*/7), Bytes{i});
  }
}

TEST(TransportTest, SessionsAndDirectionsAreIsolated) {
  SimNetwork sim(2);
  Transport* net = &sim;
  net->Send(0, 1, Bytes{1}, 100);
  net->Send(0, 1, Bytes{2}, 200);
  net->Send(1, 0, Bytes{3}, 100);
  EXPECT_EQ(net->Recv(1, 0, 200), Bytes{2});
  EXPECT_EQ(net->Recv(1, 0, 100), Bytes{1});
  EXPECT_EQ(net->Recv(0, 1, 100), Bytes{3});
}

TEST(TransportTest, SendBatchPreservesFifoBoundariesAndMetering) {
  SimNetwork sim(2);
  Transport* net = &sim;
  net->Send(0, 1, Bytes{0});
  net->SendBatch(0, 1, {Bytes{1}, Bytes{2, 2}, Bytes{3}});
  net->Send(0, 1, Bytes{4});

  EXPECT_EQ(net->Recv(1, 0), Bytes{0});
  EXPECT_EQ(net->Recv(1, 0), Bytes{1});
  EXPECT_EQ(net->Recv(1, 0), (Bytes{2, 2}));
  EXPECT_EQ(net->Recv(1, 0), Bytes{3});
  EXPECT_EQ(net->Recv(1, 0), Bytes{4});

  // Metering is identical to five individual Sends.
  TrafficStats s = net->NodeStats(0);
  EXPECT_EQ(s.messages_sent, 5u);
  EXPECT_EQ(s.bytes_sent, 6u);
  EXPECT_EQ(net->NodeStats(1).messages_received, 5u);
  EXPECT_EQ(net->NodeStats(1).bytes_received, 6u);
}

TEST(TransportTest, SendBatchWakesBlockedReceiver) {
  SimNetwork sim(2);
  Transport* net = &sim;
  Bytes first, second;
  std::thread receiver([&] {
    first = net->Recv(1, 0);
    second = net->Recv(1, 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net->SendBatch(0, 1, {Bytes{8}, Bytes{9}});
  receiver.join();
  EXPECT_EQ(first, Bytes{8});
  EXPECT_EQ(second, Bytes{9});
}

// Observer callbacks must arrive in FIFO delivery order per channel, for
// batched sends exactly as for individual ones.
class OrderRecorder : public NetworkObserver {
 public:
  void OnSend(NodeId from, NodeId to, SessionId session, const Bytes& payload) override {
    (void)from;
    (void)to;
    (void)session;
    sends.push_back(payload);
  }
  void OnRecv(NodeId to, NodeId from, SessionId session, const Bytes& payload) override {
    (void)to;
    (void)from;
    (void)session;
    recvs.push_back(payload);
  }
  std::vector<Bytes> sends;
  std::vector<Bytes> recvs;
};

TEST(TransportTest, ObserverSeesBatchedMessagesInFifoOrder) {
  SimNetwork sim(2);
  Transport* net = &sim;
  OrderRecorder recorder;
  net->SetObserver(&recorder);

  net->SendBatch(0, 1, {Bytes{1}, Bytes{2}});
  net->Send(0, 1, Bytes{3});
  for (int i = 0; i < 3; i++) {
    net->Recv(1, 0);
  }

  std::vector<Bytes> expected = {Bytes{1}, Bytes{2}, Bytes{3}};
  EXPECT_EQ(recorder.sends, expected);
  EXPECT_EQ(recorder.recvs, expected);
}

TEST(TransportTest, ObserverAttachAfterTrafficAborts) {
  OrderRecorder recorder;
  EXPECT_DEATH(
      {
        SimNetwork sim(2);
        sim.Send(0, 1, Bytes{1});
        sim.SetObserver(&recorder);
      },
      "CHECK failed");
}

TEST(TransportTest, HighWatermarkCapAborts) {
  TransportOptions options;
  options.channel_high_watermark_bytes = 16;
  EXPECT_DEATH(
      {
        SimNetwork sim(2, options);
        for (int i = 0; i < 3; i++) {
          sim.Send(0, 1, Bytes(8));  // 24 queued bytes > 16 cap
        }
      },
      "CHECK failed");
}

TEST(TransportTest, HighWatermarkCountsQueuedNotTotalBytes) {
  TransportOptions options;
  options.channel_high_watermark_bytes = 16;
  SimNetwork sim(2, options);
  // Draining keeps the queue below the cap even though total traffic far
  // exceeds it.
  for (int i = 0; i < 10; i++) {
    sim.Send(0, 1, Bytes(8));
    sim.Recv(1, 0);
  }
  EXPECT_EQ(sim.TotalBytes(), 80u);
}

// A Transport over zero nodes reports zero average traffic instead of
// dividing by zero (backends normally forbid construction at n == 0, but
// the base-class arithmetic must not rely on that).
class EmptyTransport : public Transport {
 public:
  int num_nodes() const override { return 0; }
  void SetObserver(NetworkObserver*) override {}
  void Send(NodeId, NodeId, Bytes, SessionId) override {}
  Bytes Recv(NodeId, NodeId, SessionId) override { return {}; }
  TrafficStats NodeStats(NodeId) const override { return {}; }
  uint64_t TotalBytes() const override { return 0; }
  uint64_t MaxBytesPerNode() const override { return 0; }
  void ResetStats() override {}
};

TEST(TransportTest, AverageBytesPerNodeOnEmptyTransportIsZero) {
  EmptyTransport empty;
  EXPECT_EQ(empty.AverageBytesPerNode(), 0.0);
}

TEST(TransportRegistryTest, BuiltinsResolveByName) {
  EXPECT_TRUE(KnownTransportBackend("sim"));
  EXPECT_TRUE(KnownTransportBackend("tcp"));
  EXPECT_FALSE(KnownTransportBackend("carrier-pigeon"));

  auto names = KnownTransportBackends();
  EXPECT_EQ(names[0], "sim");
  EXPECT_EQ(names[1], "tcp");

  auto sim = MakeTransport(SimTransportSpec(), 3);
  EXPECT_EQ(sim->num_nodes(), 3);
  sim->Send(0, 1, Bytes{1});
  EXPECT_EQ(sim->Recv(1, 0), Bytes{1});
}

TEST(TransportRegistryTest, SpecOptionsReachTheBackend) {
  TransportSpec spec = SimTransportSpec();
  spec.options.channel_high_watermark_bytes = 16;
  EXPECT_DEATH(
      {
        auto net = MakeTransport(spec, 2);
        for (int i = 0; i < 3; i++) {
          net->Send(0, 1, Bytes(8));  // 24 queued bytes > 16 cap
        }
      },
      "CHECK failed");
}

TEST(TransportRegistryTest, OverrideAndReset) {
  // A registered factory replaces a built-in by name (the seam a test
  // double or an out-of-tree backend uses), and ResetTransport restores
  // the built-in.
  RegisterTransport("sim", [](int num_nodes, const TransportSpec&) {
    return std::make_unique<SimNetwork>(num_nodes + 1);
  });
  EXPECT_EQ(MakeTransport(SimTransportSpec(), 3)->num_nodes(), 4);

  ResetTransport("sim");
  EXPECT_EQ(MakeTransport(SimTransportSpec(), 3)->num_nodes(), 3);

  RegisterTransport("loopback", [](int num_nodes, const TransportSpec&) {
    return std::make_unique<SimNetwork>(num_nodes);
  });
  EXPECT_TRUE(KnownTransportBackend("loopback"));
  TransportSpec spec;
  spec.backend = "loopback";
  EXPECT_EQ(MakeTransport(spec, 2)->num_nodes(), 2);
  ResetTransport("loopback");
  EXPECT_FALSE(KnownTransportBackend("loopback"));
}

TEST(ChannelTest, BuffersUntilFlush) {
  SimNetwork sim(3);
  Channel channel(&sim, 0, {0, 1, 2}, /*session=*/5);
  channel.Send(1, Bytes{1});
  channel.Send(2, Bytes{2});
  channel.Send(1, Bytes{3});
  EXPECT_EQ(sim.TotalBytes(), 0u);  // nothing on the wire yet

  channel.Flush();
  EXPECT_EQ(sim.NodeStats(0).messages_sent, 3u);
  EXPECT_EQ(sim.Recv(1, 0, 5), Bytes{1});
  EXPECT_EQ(sim.Recv(1, 0, 5), Bytes{3});
  EXPECT_EQ(sim.Recv(2, 0, 5), Bytes{2});
}

TEST(ChannelTest, RecvFlushesPendingSends) {
  SimNetwork sim(2);
  Channel a(&sim, 0, {0, 1}, 0);
  Channel b(&sim, 1, {0, 1}, 0);
  std::thread peer([&] {
    Bytes got = b.Recv(0);
    b.Send(0, got);
    b.Flush();
  });
  a.Send(1, Bytes{42});
  // Recv must flush the buffered send first, or this deadlocks.
  EXPECT_EQ(a.Recv(1), Bytes{42});
  peer.join();
}

TEST(ChannelTest, BroadcastSkipsSelf) {
  SimNetwork sim(3);
  Channel channel(&sim, 1, {0, 1, 2}, 0);
  channel.Broadcast(Bytes{7});
  channel.Flush();
  EXPECT_EQ(sim.Recv(0, 1), Bytes{7});
  EXPECT_EQ(sim.Recv(2, 1), Bytes{7});
  EXPECT_EQ(sim.NodeStats(1).messages_sent, 2u);
}

}  // namespace
}  // namespace dstress::net
