#include "src/crypto/fp.h"

#include <gtest/gtest.h>

#include "src/crypto/chacha20.h"

namespace dstress::crypto {
namespace {

Fp RandomFp(ChaCha20Prg& prg) { return Fp::FromU256(prg.NextU256()); }

TEST(FpTest, PrimeHasExpectedValue) {
  EXPECT_EQ(Fp::P().ToHex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
}

TEST(FpTest, AddSubRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(10);
  for (int i = 0; i < 200; i++) {
    Fp a = RandomFp(prg);
    Fp b = RandomFp(prg);
    EXPECT_EQ(a + b - b, a);
    EXPECT_EQ(a - a, Fp::FromUint64(0));
  }
}

TEST(FpTest, NegIsAdditiveInverse) {
  auto prg = ChaCha20Prg::FromSeed(11);
  for (int i = 0; i < 100; i++) {
    Fp a = RandomFp(prg);
    EXPECT_EQ(a + a.Neg(), Fp::FromUint64(0));
  }
  EXPECT_EQ(Fp::FromUint64(0).Neg(), Fp::FromUint64(0));
}

TEST(FpTest, MulCommutativeAssociativeDistributive) {
  auto prg = ChaCha20Prg::FromSeed(12);
  for (int i = 0; i < 100; i++) {
    Fp a = RandomFp(prg);
    Fp b = RandomFp(prg);
    Fp c = RandomFp(prg);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(FpTest, MulByZeroAndOne) {
  auto prg = ChaCha20Prg::FromSeed(13);
  Fp zero = Fp::FromUint64(0);
  Fp one = Fp::FromUint64(1);
  for (int i = 0; i < 50; i++) {
    Fp a = RandomFp(prg);
    EXPECT_EQ(a * zero, zero);
    EXPECT_EQ(a * one, a);
  }
}

TEST(FpTest, SquareMatchesMul) {
  auto prg = ChaCha20Prg::FromSeed(14);
  for (int i = 0; i < 100; i++) {
    Fp a = RandomFp(prg);
    EXPECT_EQ(a.Square(), a * a);
  }
}

TEST(FpTest, ReductionOfMaxProduct) {
  // (p-1)^2 mod p == 1.
  Fp p_minus_1 = Fp::FromUint64(0) - Fp::FromUint64(1);
  EXPECT_EQ(p_minus_1 * p_minus_1, Fp::FromUint64(1));
}

TEST(FpTest, InverseRoundTrip) {
  auto prg = ChaCha20Prg::FromSeed(15);
  for (int i = 0; i < 50; i++) {
    Fp a = RandomFp(prg);
    if (a.IsZero()) {
      continue;
    }
    EXPECT_EQ(a * a.Inv(), Fp::FromUint64(1));
  }
}

TEST(FpTest, PowSmallExponents) {
  Fp three = Fp::FromUint64(3);
  EXPECT_EQ(three.Pow(U256(0)), Fp::FromUint64(1));
  EXPECT_EQ(three.Pow(U256(1)), three);
  EXPECT_EQ(three.Pow(U256(5)), Fp::FromUint64(243));
}

TEST(FpTest, SqrtOfSquares) {
  auto prg = ChaCha20Prg::FromSeed(16);
  for (int i = 0; i < 50; i++) {
    Fp a = RandomFp(prg);
    Fp square = a.Square();
    Fp root = Fp::FromUint64(0);
    ASSERT_TRUE(square.Sqrt(&root));
    EXPECT_TRUE(root == a || root == a.Neg());
  }
}

TEST(FpTest, SqrtRejectsNonResidue) {
  // Find a quadratic non-residue by testing candidates: x is a residue iff
  // x^((p-1)/2) == 1. For secp256k1's p, 3 is a known non-residue.
  Fp three = Fp::FromUint64(3);
  Fp root = Fp::FromUint64(0);
  EXPECT_FALSE(three.Sqrt(&root));
}

TEST(FpTest, FromU256ReducesOverflow) {
  // p + 5 should reduce to 5.
  U256 over;
  AddWithCarry(Fp::P(), U256(5), &over);
  EXPECT_EQ(Fp::FromU256(over), Fp::FromUint64(5));
}

class FpPowParamTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FpPowParamTest, PowAgainstRepeatedMul) {
  uint64_t e = GetParam();
  Fp base = Fp::FromUint64(7);
  Fp expected = Fp::FromUint64(1);
  for (uint64_t i = 0; i < e; i++) {
    expected = expected * base;
  }
  EXPECT_EQ(base.Pow(U256(e)), expected);
}

INSTANTIATE_TEST_SUITE_P(SmallExponents, FpPowParamTest,
                         ::testing::Values(0, 1, 2, 3, 10, 17, 31, 64, 100, 255));

}  // namespace
}  // namespace dstress::crypto
