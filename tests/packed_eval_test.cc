// Packed-share data plane tests (docs/packed-eval.md): the bitsliced
// representations and batched evaluation paths must be bit-identical to the
// per-instance seed paths on an adversarial corpus of random circuits.
//
//  * PackedShareMatrix round-trips the column representation.
//  * EvalPlan::EvalPacked (word-parallel cleartext) == Circuit::Eval per
//    instance, for batch widths around the word boundaries.
//  * GmwParty::EvalBatch == per-instance GmwParty::Eval == Circuit::Eval on
//    reconstructed outputs, same widths.
//  * The multi-node single-scheduler mode of EvalBatchInstances (many
//    executing nodes, heterogeneous circuits, one thread) matches cleartext.
#include <gtest/gtest.h>

#include <thread>

#include "src/circuit/circuit.h"
#include "src/circuit/eval_plan.h"
#include "src/common/rng.h"
#include "src/mpc/batch_eval.h"
#include "src/mpc/gmw.h"
#include "src/mpc/packed.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/transport_spec.h"

namespace dstress::mpc {
namespace {

using circuit::Circuit;
using circuit::EvalPlan;
using circuit::Gate;
using circuit::GateOp;
using circuit::Wire;

// Random topologically ordered circuit: `inputs` input gates followed by
// `body` random gates over earlier wires, with random output taps. The mix
// leans on XOR/AND so both the free and the interactive paths get depth.
Circuit RandomCircuit(uint64_t seed, int inputs, int body) {
  Rng rng(seed);
  std::vector<Gate> gates;
  for (int i = 0; i < inputs; i++) {
    gates.push_back({GateOp::kInput, 0, 0});
  }
  for (int i = 0; i < body; i++) {
    Wire a = static_cast<Wire>(rng.Below(gates.size()));
    Wire b = static_cast<Wire>(rng.Below(gates.size()));
    switch (rng.Below(8)) {
      case 0:
        gates.push_back({GateOp::kConst, static_cast<Wire>(rng.Below(2)), 0});
        break;
      case 1:
        gates.push_back({GateOp::kNot, a, 0});
        break;
      case 2:
      case 3:
      case 4:
        gates.push_back({GateOp::kXor, a, b});
        break;
      default:
        gates.push_back({GateOp::kAnd, a, b});
        break;
    }
  }
  std::vector<Wire> outputs;
  int num_outputs = 1 + static_cast<int>(rng.Below(24));
  for (int i = 0; i < num_outputs; i++) {
    outputs.push_back(static_cast<Wire>(rng.Below(gates.size())));
  }
  return Circuit(std::move(gates), std::move(outputs), inputs);
}

std::vector<BitVector> RandomInstances(uint64_t seed, size_t bits, size_t count) {
  Rng rng(seed);
  std::vector<BitVector> out(count, BitVector(bits));
  for (auto& inst : out) {
    for (auto& bit : inst) {
      bit = rng.Below(2) ? 1 : 0;
    }
  }
  return out;
}

TEST(PackedShareMatrixTest, RoundTripsInstances) {
  auto instances = RandomInstances(7, 133, 70);
  PackedShareMatrix m = PackedShareMatrix::FromInstances(instances);
  EXPECT_EQ(m.rows(), 133u);
  EXPECT_EQ(m.instances(), 70u);
  EXPECT_EQ(m.words_per_row(), 2u);
  EXPECT_EQ(m.ToInstances(), instances);
  // Column writes land in the right lanes.
  PackedShareMatrix n(133, 70);
  for (size_t j = 0; j < instances.size(); j++) {
    n.SetInstance(j, instances[j]);
  }
  for (size_t j = 0; j < instances.size(); j++) {
    EXPECT_EQ(n.Instance(j), instances[j]) << j;
  }
}

TEST(EvalPlanTest, PackedClearTextMatchesEvalOnRandomCorpus) {
  for (uint64_t seed = 1; seed <= 12; seed++) {
    Circuit circuit = RandomCircuit(seed, 8 + seed % 13, 60 + 20 * (seed % 5));
    EvalPlan plan(circuit);
    for (size_t width : {1u, 3u, 64u, 130u}) {
      auto instances = RandomInstances(seed * 100 + width, circuit.num_inputs(), width);
      size_t wpr = (width + 63) / 64;
      std::vector<uint64_t> inputs(circuit.num_inputs() * wpr, 0);
      for (size_t j = 0; j < width; j++) {
        for (size_t i = 0; i < circuit.num_inputs(); i++) {
          if (instances[j][i] & 1) {
            inputs[i * wpr + j / 64] |= 1ULL << (j % 64);
          }
        }
      }
      std::vector<uint64_t> outputs(circuit.num_outputs() * wpr);
      plan.EvalPacked(inputs.data(), wpr, outputs.data());
      for (size_t j = 0; j < width; j++) {
        BitVector expect = circuit.Eval(instances[j]);
        for (size_t o = 0; o < circuit.num_outputs(); o++) {
          EXPECT_EQ((outputs[o * wpr + j / 64] >> (j % 64)) & 1, expect[o])
              << "seed " << seed << " width " << width << " instance " << j << " output " << o;
        }
      }
    }
  }
}

// All parties run EvalBatch over a sim transport; returns the
// reconstructed (opened) outputs per instance.
std::vector<BitVector> RunGmwBatch(const Circuit& circuit,
                                   const std::vector<BitVector>& instances, int parties,
                                   uint64_t seed) {
  EvalPlan plan(circuit);
  auto net = net::MakeSimTransport(parties);
  auto prg = crypto::ChaCha20Prg::FromSeed(seed);
  // Share every instance's inputs across the parties.
  std::vector<PackedShareMatrix> party_inputs(
      parties, PackedShareMatrix(circuit.num_inputs(), instances.size()));
  for (size_t j = 0; j < instances.size(); j++) {
    auto shares = ShareBits(instances[j], parties, prg);
    for (int p = 0; p < parties; p++) {
      party_inputs[p].SetInstance(j, shares[p]);
    }
  }
  std::vector<net::NodeId> ids(parties);
  for (int p = 0; p < parties; p++) {
    ids[p] = p;
  }
  std::vector<PackedShareMatrix> party_outputs(parties);
  std::vector<std::thread> threads;
  for (int p = 0; p < parties; p++) {
    threads.emplace_back([&, p] {
      DealerTripleSource triples(p, parties, seed ^ 0x5eedULL);
      GmwParty party(net.get(), ids, p, &triples);
      BatchStats stats;
      party_outputs[p] = party.EvalBatch(plan, party_inputs[p], &stats);
      EXPECT_EQ(stats.rounds, circuit.stats().and_depth);
      EXPECT_EQ(stats.triples_consumed, circuit.stats().num_and * instances.size());
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<BitVector> opened;
  for (size_t j = 0; j < instances.size(); j++) {
    std::vector<BitVector> shares;
    for (int p = 0; p < parties; p++) {
      shares.push_back(party_outputs[p].Instance(j));
    }
    opened.push_back(ReconstructBits(shares));
  }
  return opened;
}

TEST(GmwEvalBatchTest, BitIdenticalToPerInstanceEvalOnRandomCorpus) {
  for (uint64_t seed = 1; seed <= 4; seed++) {
    Circuit circuit = RandomCircuit(seed * 31, 10, 90);
    int parties = 2 + static_cast<int>(seed % 3);
    for (size_t width : {1u, 3u, 64u, 130u}) {
      auto instances = RandomInstances(seed * 1000 + width, circuit.num_inputs(), width);
      std::vector<BitVector> batched = RunGmwBatch(circuit, instances, parties, seed);
      for (size_t j = 0; j < width; j++) {
        EXPECT_EQ(batched[j], circuit.Eval(instances[j]))
            << "seed " << seed << " width " << width << " instance " << j;
      }
    }
    // The W=1 case *is* Eval: one solo per-instance run must reconstruct to
    // the same outputs the batch did.
    auto instances = RandomInstances(seed * 7777, circuit.num_inputs(), 3);
    std::vector<BitVector> batched = RunGmwBatch(circuit, instances, parties, seed + 9);
    for (size_t j = 0; j < instances.size(); j++) {
      std::vector<BitVector> solo = RunGmwBatch(circuit, {instances[j]}, parties, seed + 9);
      EXPECT_EQ(solo[0], batched[j]) << "seed " << seed << " instance " << j;
    }
  }
}

// The runtime's single-scheduler mode: one thread, many executing nodes,
// two different circuits in one lockstep call. Every receive must be
// satisfied by a send earlier in the same round — the call would hang
// otherwise, so passing at all is half the assertion.
TEST(EvalBatchInstancesTest, SingleThreadMultiNodeHeterogeneousCircuits) {
  Circuit big = RandomCircuit(71, 12, 140);
  Circuit small = RandomCircuit(72, 6, 40);
  EvalPlan big_plan(big);
  EvalPlan small_plan(small);

  const int num_nodes = 6;
  auto net = net::MakeSimTransport(num_nodes);
  auto prg = crypto::ChaCha20Prg::FromSeed(99);

  struct Spec {
    const Circuit* circuit;
    const EvalPlan* plan;
    std::vector<net::NodeId> parties;
    uint64_t key;
  };
  std::vector<Spec> specs = {
      {&big, &big_plan, {0, 2, 4}, 0},
      {&big, &big_plan, {1, 3, 5}, 1},
      {&big, &big_plan, {5, 0, 3, 2}, 2},
      {&small, &small_plan, {2, 1}, 3},
      {&small, &small_plan, {4, 5, 0, 1, 3}, 4},
  };

  std::vector<BitVector> plain_inputs;
  std::vector<mpc::BatchInstance> items;
  std::vector<size_t> item_spec;  // which spec each item belongs to
  for (size_t s = 0; s < specs.size(); s++) {
    const Spec& spec = specs[s];
    BitVector input = RandomInstances(500 + s, spec.circuit->num_inputs(), 1)[0];
    plain_inputs.push_back(input);
    auto shares = ShareBits(input, static_cast<int>(spec.parties.size()), prg);
    for (size_t p = 0; p < spec.parties.size(); p++) {
      DealerTripleSource triples(static_cast<int>(p), static_cast<int>(spec.parties.size()),
                                 1234 + s);
      mpc::BatchInstance item;
      item.plan = spec.plan;
      item.parties = spec.parties;
      item.my_index = static_cast<int>(p);
      item.triples = triples.Generate(spec.circuit->stats().num_and);
      item.input_shares = shares[p];
      item.order_key = spec.key;
      items.push_back(std::move(item));
      item_spec.push_back(s);
    }
  }

  BatchStats stats;
  std::vector<BitVector> outputs =
      EvalBatchInstances(net.get(), /*session=*/0, std::move(items), &stats);
  EXPECT_EQ(stats.rounds,
            std::max(big.stats().and_depth, small.stats().and_depth));

  // Reconstruct each spec's outputs from its parties' shares.
  for (size_t s = 0; s < specs.size(); s++) {
    std::vector<BitVector> shares;
    for (size_t i = 0; i < outputs.size(); i++) {
      if (item_spec[i] == s) {
        shares.push_back(outputs[i]);
      }
    }
    EXPECT_EQ(ReconstructBits(shares), specs[s].circuit->Eval(plain_inputs[s])) << "spec " << s;
  }
}

}  // namespace
}  // namespace dstress::mpc
