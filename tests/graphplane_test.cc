// Flat-arena cleartext graph plane tests (src/graphplane + the arena
// backend dispatch in src/engine/cleartext_backend.cc).
//
// Two halves:
//
//  1. A randomized differential corpus pinning the arena plane
//     (RunSpec::cleartext_arena = true, the default) bit-identical to the
//     retired container plane (false) — released figures, cleartext
//     references, per-vertex final states and per-node TrafficStats — over
//     random topologies (N in {1, 7, 64, 1000}), EN / EGJ / custom vertex
//     programs, flat and tree aggregation, and ensemble widths W in
//     {1, 3, 64}. This harness is what lets the container plane be deleted
//     later without a fidelity argument from first principles.
//
//  2. Frontier unit tests driving graphplane::GraphPlane directly: words
//     deactivate when their inputs stop changing, reactivate when a changed
//     message is delivered, every edge is still metered every iteration,
//     and W > 1 scenario lanes converge independently without cross-lane
//     contamination. Plus the engine-level early-exit A/B: stopping at
//     AllConverged releases the same figure as running all I iterations.

#include "src/graphplane/plane.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/eval_plan.h"
#include "src/core/vertex_program.h"
#include "src/core/worker_pool.h"
#include "src/engine/engine.h"
#include "src/graph/graph.h"
#include "src/net/sim_network.h"
#include "src/programs/private_sum.h"
#include "src/programs/reachability.h"

namespace dstress {
namespace {

using engine::ContagionModel;
using engine::Engine;
using engine::ExecutionMode;
using engine::RunReport;
using engine::RunSpec;

// --- differential corpus ----------------------------------------------------

void ExpectSameTraffic(const Engine& a, const Engine& b, const std::string& label) {
  ASSERT_EQ(a.transport().num_nodes(), b.transport().num_nodes()) << label;
  for (int v = 0; v < a.transport().num_nodes(); v++) {
    net::TrafficStats sa = a.transport().NodeStats(v);
    net::TrafficStats sb = b.transport().NodeStats(v);
    EXPECT_EQ(sa.bytes_sent, sb.bytes_sent) << label << " node " << v;
    EXPECT_EQ(sa.bytes_received, sb.bytes_received) << label << " node " << v;
    EXPECT_EQ(sa.messages_sent, sb.messages_sent) << label << " node " << v;
    EXPECT_EQ(sa.messages_received, sb.messages_received) << label << " node " << v;
  }
}

// Runs `spec` once per plane and asserts the full observable surface is
// bit-identical: released figure, reference, final states, traffic.
void ExpectArenaMatchesLegacy(RunSpec spec, const std::string& label) {
  RunSpec arena_spec = spec;
  arena_spec.cleartext_arena = true;
  RunSpec legacy_spec = spec;
  legacy_spec.cleartext_arena = false;

  Engine arena(arena_spec);
  RunReport a = arena.Run();
  Engine legacy(legacy_spec);
  RunReport l = legacy.Run();

  EXPECT_EQ(a.released, l.released) << label;
  ASSERT_EQ(a.has_reference, l.has_reference) << label;
  if (a.has_reference) {
    EXPECT_EQ(a.reference, l.reference) << label;
  }
  EXPECT_EQ(a.iterations, l.iterations) << label;
  EXPECT_EQ(a.metrics.total_bytes, l.metrics.total_bytes) << label;

  std::vector<mpc::BitVector> sa = arena.FinalStates();
  std::vector<mpc::BitVector> sl = legacy.FinalStates();
  ASSERT_EQ(sa.size(), sl.size()) << label;
  for (size_t v = 0; v < sa.size(); v++) {
    EXPECT_EQ(sa[v], sl[v]) << label << " vertex " << v;
  }
  ExpectSameTraffic(arena, legacy, label);
}

RunSpec FinanceSpec(ContagionModel model, int n, uint64_t seed) {
  RunSpec spec;
  spec.mode = ExecutionMode::kCleartextFast;
  spec.model = model;
  if (n == 1) {
    spec.topology = engine::ExplicitTopology(1, {});
    spec.degree_bound = 1;
  } else {
    spec.topology = engine::ScaleFreeTopology(n, 2);
    spec.topology.degree_cap = 4;
  }
  spec.shock.shocked_banks = {0};
  spec.seed = seed;
  return spec;
}

TEST(GraphPlaneDifferentialTest, FinanceModelsAcrossSizesAndSeeds) {
  for (ContagionModel model :
       {ContagionModel::kEisenbergNoe, ContagionModel::kElliottGolubJackson}) {
    for (int n : {1, 7, 64}) {
      for (uint64_t seed : {1u, 23u, 777u}) {
        RunSpec spec = FinanceSpec(model, n, seed);
        ExpectArenaMatchesLegacy(
            spec, std::string(model == ContagionModel::kEisenbergNoe ? "en" : "egj") + " n=" +
                      std::to_string(n) + " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(GraphPlaneDifferentialTest, ThousandVertexSweepMatches) {
  for (ContagionModel model :
       {ContagionModel::kEisenbergNoe, ContagionModel::kElliottGolubJackson}) {
    RunSpec spec = FinanceSpec(model, 1000, 4);
    ExpectArenaMatchesLegacy(spec, "n=1000");
  }
}

// Tree aggregation (aggregation_fanout > 1) exercises the arena backend's
// gather-tree traffic simulation against the legacy literal tree.
TEST(GraphPlaneDifferentialTest, TreeAggregationMatchesFlat) {
  for (int fanout : {2, 4, 8}) {
    RunSpec spec = FinanceSpec(ContagionModel::kEisenbergNoe, 64, 9);
    spec.aggregation_fanout = fanout;
    ExpectArenaMatchesLegacy(spec, "fanout=" + std::to_string(fanout));
  }
  RunSpec odd = FinanceSpec(ContagionModel::kElliottGolubJackson, 7, 5);
  odd.aggregation_fanout = 3;
  ExpectArenaMatchesLegacy(odd, "egj fanout=3");
}

TEST(GraphPlaneDifferentialTest, CustomProgramsMatch) {
  for (int n : {7, 64}) {
    Rng rng(static_cast<uint64_t>(n) * 31);
    graph::Graph g = graph::GenerateScaleFree(n, 2, rng);

    programs::PrivateSumParams sum_params;
    sum_params.degree_bound = std::max(1, g.MaxDegree());
    sum_params.noise.alpha = 1e-12;
    sum_params.noise.magnitude_bits = 8;
    sum_params.noise.threshold_bits = 10;
    std::vector<uint32_t> values;
    for (int v = 0; v < n; v++) {
      values.push_back(static_cast<uint32_t>(100 + 7 * v));
    }
    RunSpec spec;
    spec.graph = g;
    spec.mode = ExecutionMode::kCleartextFast;
    spec.model = ContagionModel::kCustom;
    spec.custom_program = programs::BuildPrivateSumProgram(sum_params);
    spec.custom_states = programs::MakePrivateSumStates(values, sum_params.value_bits);
    spec.seed = static_cast<uint64_t>(n);
    ExpectArenaMatchesLegacy(spec, "private_sum n=" + std::to_string(n));

    programs::ReachabilityParams reach_params;
    reach_params.degree_bound = std::max(1, g.MaxDegree());
    reach_params.hops = 3;
    reach_params.noise.alpha = 1e-12;
    reach_params.noise.magnitude_bits = 8;
    reach_params.noise.threshold_bits = 10;
    RunSpec reach;
    reach.graph = g;
    reach.mode = ExecutionMode::kCleartextFast;
    reach.model = ContagionModel::kCustom;
    reach.custom_program = programs::BuildReachabilityProgram(reach_params);
    reach.custom_states = programs::MakeReachabilityStates(n, {0});
    reach.seed = static_cast<uint64_t>(n) + 1;
    ExpectArenaMatchesLegacy(reach, "reachability n=" + std::to_string(n));
  }
}

// Ensemble lanes: per-scenario figures and per-node traffic must match the
// container ensemble plane lane for lane.
void ExpectEnsembleMatches(RunSpec spec, const std::string& label) {
  RunSpec arena_spec = spec;
  arena_spec.cleartext_arena = true;
  RunSpec legacy_spec = spec;
  legacy_spec.cleartext_arena = false;

  Engine arena(arena_spec);
  ensemble::EnsembleReport a = arena.RunEnsemble();
  Engine legacy(legacy_spec);
  ensemble::EnsembleReport l = legacy.RunEnsemble();

  ASSERT_EQ(a.scenarios.size(), l.scenarios.size()) << label;
  for (size_t s = 0; s < a.scenarios.size(); s++) {
    EXPECT_EQ(a.scenarios[s].released, l.scenarios[s].released) << label << " lane " << s;
    ASSERT_EQ(a.scenarios[s].has_reference, l.scenarios[s].has_reference) << label;
    if (a.scenarios[s].has_reference) {
      EXPECT_EQ(a.scenarios[s].reference, l.scenarios[s].reference) << label << " lane " << s;
    }
  }
  EXPECT_EQ(a.metrics.total_bytes, l.metrics.total_bytes) << label;
  ExpectSameTraffic(arena, legacy, label);
}

TEST(GraphPlaneDifferentialTest, EnsembleWidthsMatch) {
  // W = 1 (degenerate lane plane) and W = 3 (explicit scenarios).
  for (int width : {1, 3}) {
    RunSpec spec = FinanceSpec(ContagionModel::kEisenbergNoe, 40, 11);
    spec.ensemble.emplace();
    for (int s = 0; s < width; s++) {
      ensemble::Scenario sc;
      sc.shock.shocked_banks = {s};
      spec.ensemble->scenarios.push_back(sc);
    }
    ExpectEnsembleMatches(spec, "ensemble W=" + std::to_string(width));
  }
  // W = 64: a full word of Monte Carlo lanes.
  RunSpec spec = FinanceSpec(ContagionModel::kEisenbergNoe, 40, 11);
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 64;
  spec.ensemble->draw_seed = 9;
  spec.ensemble->banks_per_draw = 2;
  spec.ensemble->has_magnitude_range = true;
  spec.ensemble->magnitude_lo = 0.0;
  spec.ensemble->magnitude_hi = 0.6;
  ExpectEnsembleMatches(spec, "ensemble W=64");
}

// --- frontier semantics -----------------------------------------------------

// OR-propagation: new_state = state | (OR of in-messages), out-message =
// the *pre-update* state. Monotone, so convergence is observable, and the
// one-iteration emission lag makes activation timing easy to pin down.
core::VertexProgram PropagateProgram(int bits, int degree_bound) {
  core::VertexProgram program;
  program.state_bits = bits;
  program.message_bits = bits;
  program.degree_bound = degree_bound;
  program.iterations = 8;
  program.aggregate_bits = 16;
  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                            std::vector<circuit::Word>* out_msgs) {
    circuit::Word acc = state;
    for (const circuit::Word& m : in_msgs) {
      for (size_t i = 0; i < acc.size(); i++) {
        acc[i] = b.Or(acc[i], m[i]);
      }
    }
    *new_state = acc;
    out_msgs->assign(in_msgs.size(), state);
  };
  program.build_contribution = [](circuit::Builder& b,
                                  const circuit::Word& state) -> circuit::Word {
    return b.ZeroExtend(state, 16);
  };
  return program;
}

TEST(GraphPlaneFrontierTest, WordsDeactivateAndReactivateOnDelivery) {
  // 130 vertices = 3 lane words; one edge crossing from word 0 to word 1.
  const int n = 130;
  graph::Graph g(n);
  g.AddEdge(0, 100);
  core::VertexProgram program = PropagateProgram(4, 1);
  circuit::Circuit update = core::BuildUpdateCircuit(program);
  circuit::EvalPlan plan(update);
  core::WorkerPool pool(2);
  net::SimNetwork net(n);
  graphplane::GraphPlane plane(g, program, plan, &pool, &net, {});

  plane.Reset();
  std::vector<mpc::BitVector> states(n, mpc::BitVector(4, 0));
  states[0] = {1, 0, 1, 0};  // 5
  graphplane::PackSoloStates(states, &plane.input_matrix());

  // After Reset everything is active.
  EXPECT_EQ(plane.ActiveWords(), 3u);

  // Iteration 1: all 3 words evaluate; only vertex 0's out-message changes
  // (⊥ -> 5), so only the word holding vertex 100 stays active.
  plane.ComputeStep();
  plane.CommunicateStep();
  EXPECT_EQ(plane.ActiveWords(), 1u);
  EXPECT_FALSE(plane.AllConverged());
  EXPECT_EQ(plane.stats().words_evaluated, 3u);
  EXPECT_EQ(plane.stats().words_skipped, 0u);
  // Delivered but not yet evaluated: vertex 100 still holds its old state.
  EXPECT_EQ(plane.VertexState(100, 0), mpc::BitVector(4, 0));

  // Iteration 2: only word 1 evaluates (the other two are skipped); vertex
  // 100 absorbs the message, so its word stays active for one more check.
  plane.ComputeStep();
  plane.CommunicateStep();
  EXPECT_EQ(plane.stats().words_evaluated, 4u);
  EXPECT_EQ(plane.stats().words_skipped, 2u);
  EXPECT_EQ(plane.VertexState(100, 0), states[0]);
  EXPECT_EQ(plane.ActiveWords(), 1u);

  // Iteration 3: vertex 100 re-evaluates to a fixed point; frontier drains.
  plane.ComputeStep();
  plane.CommunicateStep();
  EXPECT_EQ(plane.stats().words_evaluated, 5u);
  EXPECT_EQ(plane.stats().words_skipped, 4u);
  EXPECT_EQ(plane.ActiveWords(), 0u);
  EXPECT_TRUE(plane.AllConverged());

  // A converged iteration evaluates nothing — but still meters every edge:
  // traffic is per-iteration regardless of the frontier.
  plane.ComputeStep();
  plane.CommunicateStep();
  EXPECT_EQ(plane.stats().words_evaluated, 5u);
  EXPECT_EQ(plane.stats().words_skipped, 7u);
  EXPECT_EQ(plane.stats().iterations, 4u);
  EXPECT_TRUE(plane.stats().bulk_metered);
  net::TrafficStats sender = net.NodeStats(0);
  net::TrafficStats receiver = net.NodeStats(100);
  EXPECT_EQ(sender.messages_sent, 4u);  // one per iteration, frontier or not
  EXPECT_EQ(receiver.messages_received, 4u);
  EXPECT_EQ(sender.bytes_sent, 4u);  // 4-bit payload -> 1 byte per message

  // States are untouched by the converged rounds.
  EXPECT_EQ(plane.VertexState(0, 0), states[0]);
  EXPECT_EQ(plane.VertexState(100, 0), states[0]);
  EXPECT_EQ(plane.VertexState(64, 0), mpc::BitVector(4, 0));
}

TEST(GraphPlaneFrontierTest, EnsembleLanesConvergeIndependently) {
  // Chain 0 -> 1 -> 2 with three scenario lanes: lane s seeds vertex s with
  // 7. Lane 0 needs the full two-hop propagation, lane 2 is converged from
  // the start — the shared frontier must keep iterating for the slowest
  // lane without disturbing the finished ones.
  const int n = 3;
  const int kScenarios = 3;
  const int kStride = 4;
  graph::Graph g(n);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  core::VertexProgram program = PropagateProgram(4, 1);
  circuit::Circuit update = core::BuildUpdateCircuit(program);
  circuit::EvalPlan plan(update);
  core::WorkerPool pool(2);
  net::SimNetwork net(n);
  graphplane::GraphPlane::Options options;
  options.num_scenarios = kScenarios;
  options.stride = kStride;
  graphplane::GraphPlane plane(g, program, plan, &pool, &net, options);

  plane.Reset();
  for (int v = 0; v < n; v++) {
    for (int s = 0; s < kScenarios; s++) {
      if (v == s) {
        // State 7 = bits 0..2 set.
        for (int r = 0; r < 3; r++) {
          plane.input_matrix().Set(static_cast<size_t>(r),
                                   static_cast<size_t>(v * kStride + s), true);
        }
      }
    }
  }

  int rounds = 0;
  while (!plane.AllConverged() && rounds < 8) {
    plane.ComputeStep();
    plane.CommunicateStep();
    rounds++;
  }
  EXPECT_TRUE(plane.AllConverged());
  // Lane 0's value crosses two edges with the one-iteration emission lag;
  // the word must have stayed active well past lane 2's instant convergence.
  EXPECT_GE(rounds, 4);

  mpc::BitVector seven = {1, 1, 1, 0};
  mpc::BitVector zero(4, 0);
  // Lane 0: seeded at vertex 0, reaches everyone downstream.
  EXPECT_EQ(plane.VertexState(0, 0), seven);
  EXPECT_EQ(plane.VertexState(1, 0), seven);
  EXPECT_EQ(plane.VertexState(2, 0), seven);
  // Lane 1: seeded at vertex 1 — vertex 0 must stay clean (no upstream or
  // cross-lane leakage).
  EXPECT_EQ(plane.VertexState(0, 1), zero);
  EXPECT_EQ(plane.VertexState(1, 1), seven);
  EXPECT_EQ(plane.VertexState(2, 1), seven);
  // Lane 2: seeded at the sink, nothing propagates.
  EXPECT_EQ(plane.VertexState(0, 2), zero);
  EXPECT_EQ(plane.VertexState(1, 2), zero);
  EXPECT_EQ(plane.VertexState(2, 2), seven);

  // Per-lane contribution sums over the final states: 3 lanes, vertex-major
  // reduction, garbage lanes (s = 3) excluded by the valid mask.
  circuit::Circuit contribution = core::BuildAggregateCircuit(program, 1, /*with_noise=*/false);
  circuit::EvalPlan contribution_plan(contribution);
  std::vector<uint64_t> sums =
      plane.ScenarioSums(plane.EvalOverStates(contribution_plan), program.aggregate_bits);
  ASSERT_EQ(sums.size(), static_cast<size_t>(kScenarios));
  EXPECT_EQ(sums[0], 21u);  // 7 + 7 + 7
  EXPECT_EQ(sums[1], 14u);  // 0 + 7 + 7
  EXPECT_EQ(sums[2], 7u);   // 0 + 0 + 7
}

// Engine-level early-exit A/B: breaking out of the iteration loop once the
// frontier drains must release the same figure and final states as running
// every scheduled iteration (the skipped rounds are figure-identical
// no-ops) — only the traffic shrinks.
TEST(GraphPlaneFrontierTest, EarlyExitReleasesSameFigureAsFullRun) {
  RunSpec full = FinanceSpec(ContagionModel::kEisenbergNoe, 200, 17);
  full.cleartext_early_exit = false;
  RunSpec early = full;
  early.cleartext_early_exit = true;

  Engine full_engine(full);
  RunReport f = full_engine.Run();
  Engine early_engine(early);
  RunReport e = early_engine.Run();

  EXPECT_EQ(e.released, f.released);
  ASSERT_TRUE(e.has_reference);
  EXPECT_EQ(e.reference, f.reference);
  std::vector<mpc::BitVector> sf = full_engine.FinalStates();
  std::vector<mpc::BitVector> se = early_engine.FinalStates();
  ASSERT_EQ(se.size(), sf.size());
  for (size_t v = 0; v < se.size(); v++) {
    EXPECT_EQ(se[v], sf[v]) << "vertex " << v;
  }
  // EN on a 200-vertex scale-free network converges long before
  // ceil(log2 200) = 8 iterations, so the early run must be cheaper.
  EXPECT_LE(e.iterations, f.iterations);
  EXPECT_LT(e.metrics.total_bytes, f.metrics.total_bytes);
}

}  // namespace
}  // namespace dstress
