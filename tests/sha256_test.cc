#include "src/crypto/sha256.h"

#include <gtest/gtest.h>

namespace dstress::crypto {
namespace {

std::string HashHex(const std::string& input) {
  Bytes data(input.begin(), input.end());
  auto digest = Sha256::Hash(data);
  return HexEncode(digest.data(), digest.size());
}

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) {
    h.Update(reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size());
  }
  auto digest = h.Finish();
  EXPECT_EQ(HexEncode(digest.data(), digest.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string message = "the quick brown fox jumps over the lazy dog, repeatedly";
  for (size_t split = 0; split <= message.size(); split += 7) {
    Sha256 h;
    h.Update(reinterpret_cast<const uint8_t*>(message.data()), split);
    h.Update(reinterpret_cast<const uint8_t*>(message.data()) + split, message.size() - split);
    auto digest = h.Finish();
    Bytes all(message.begin(), message.end());
    EXPECT_EQ(digest, Sha256::Hash(all)) << "split=" << split;
  }
}

TEST(Sha256Test, FinishResetsState) {
  Sha256 h;
  Bytes a = {'a'};
  h.Update(a);
  auto first = h.Finish();
  h.Update(a);
  auto second = h.Finish();
  EXPECT_EQ(first, second);
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  // Exercise message lengths across the padding boundary (55/56/57, 63/64).
  for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    Bytes a(len, 0x41);
    Bytes b(len, 0x42);
    EXPECT_NE(Sha256::Hash(a), Sha256::Hash(b)) << "len=" << len;
  }
}

}  // namespace
}  // namespace dstress::crypto
