#include <gtest/gtest.h>

#include <thread>

#include "src/net/sim_network.h"
#include "src/ot/base_ot.h"
#include "src/ot/iknp.h"

namespace dstress::ot {
namespace {

TEST(BaseOtTest, ReceiverLearnsChosenKeyOnly) {
  net::SimNetwork net(2);
  constexpr int kCount = 32;
  std::vector<bool> choices(kCount);
  for (int i = 0; i < kCount; i++) {
    choices[i] = (i % 3) == 0;
  }
  BaseOtSenderOutput sender_out;
  BaseOtReceiverOutput receiver_out;
  std::thread sender([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(1);
    sender_out = BaseOtSend(&net, 0, 1, kCount, prg);
  });
  std::thread receiver([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(2);
    receiver_out = BaseOtRecv(&net, 1, 0, choices, prg);
  });
  sender.join();
  receiver.join();
  ASSERT_EQ(sender_out.keys0.size(), static_cast<size_t>(kCount));
  ASSERT_EQ(receiver_out.keys.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; i++) {
    const OtKey& chosen = choices[i] ? sender_out.keys1[i] : sender_out.keys0[i];
    const OtKey& other = choices[i] ? sender_out.keys0[i] : sender_out.keys1[i];
    EXPECT_EQ(receiver_out.keys[i], chosen) << i;
    EXPECT_NE(receiver_out.keys[i], other) << i;
  }
}

TEST(BaseOtTest, KeysAreDistinctAcrossTransfers) {
  net::SimNetwork net(2);
  BaseOtSenderOutput sender_out;
  std::thread sender([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(3);
    sender_out = BaseOtSend(&net, 0, 1, 8, prg);
  });
  std::thread receiver([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(4);
    BaseOtRecv(&net, 1, 0, std::vector<bool>(8, false), prg);
  });
  sender.join();
  receiver.join();
  for (int i = 0; i < 8; i++) {
    for (int j = i + 1; j < 8; j++) {
      EXPECT_NE(sender_out.keys0[i], sender_out.keys0[j]);
    }
    EXPECT_NE(sender_out.keys0[i], sender_out.keys1[i]);
  }
}

class IknpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IknpTest, ExtensionDeliversChosenBits) {
  size_t count = GetParam();
  net::SimNetwork net(2);
  RandomOtPairs pairs;
  RandomOtChosen chosen;
  PackedBits choices(PackedWords(count), 0);
  auto choice_prg = crypto::ChaCha20Prg::FromSeed(50);
  choice_prg.Fill(reinterpret_cast<uint8_t*>(choices.data()), choices.size() * 8);

  std::thread sender([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(5);
    IknpSender s(&net, 0, 1, prg);
    pairs = s.Extend(count);
  });
  std::thread receiver([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(6);
    IknpReceiver r(&net, 1, 0, prg);
    chosen = r.Extend(choices, count);
  });
  sender.join();
  receiver.join();

  for (size_t j = 0; j < count; j++) {
    bool expect = GetBit(choices, j) ? GetBit(pairs.r1, j) : GetBit(pairs.r0, j);
    ASSERT_EQ(GetBit(chosen.r, j), expect) << "ot " << j;
  }
  // Sanity: the two sender strings differ in a nontrivial fraction of
  // positions (they are independent random bits).
  size_t differ = 0;
  for (size_t j = 0; j < count; j++) {
    differ += GetBit(pairs.r0, j) != GetBit(pairs.r1, j) ? 1 : 0;
  }
  if (count >= 64) {
    EXPECT_GT(differ, count / 4);
    EXPECT_LT(differ, 3 * count / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IknpTest, ::testing::Values(1, 63, 64, 65, 128, 1000, 4096));

TEST(IknpTest, RepeatedExtendsStayConsistent) {
  net::SimNetwork net(2);
  constexpr size_t kCount = 256;
  std::vector<RandomOtPairs> all_pairs;
  std::vector<RandomOtChosen> all_chosen;
  PackedBits choices(PackedWords(kCount), 0xAAAAAAAAAAAAAAAAULL);

  std::thread sender([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(7);
    IknpSender s(&net, 0, 1, prg);
    for (int round = 0; round < 3; round++) {
      all_pairs.push_back(s.Extend(kCount));
    }
  });
  std::thread receiver([&] {
    auto prg = crypto::ChaCha20Prg::FromSeed(8);
    IknpReceiver r(&net, 1, 0, prg);
    for (int round = 0; round < 3; round++) {
      all_chosen.push_back(r.Extend(choices, kCount));
    }
  });
  sender.join();
  receiver.join();

  for (int round = 0; round < 3; round++) {
    for (size_t j = 0; j < kCount; j++) {
      bool expect = GetBit(choices, j) ? GetBit(all_pairs[round].r1, j)
                                       : GetBit(all_pairs[round].r0, j);
      ASSERT_EQ(GetBit(all_chosen[round].r, j), expect) << "round " << round << " ot " << j;
    }
  }
  // Different rounds must produce different randomness.
  EXPECT_NE(all_pairs[0].r0, all_pairs[1].r0);
}

TEST(PackedBitsTest, SetGetRoundTrip) {
  PackedBits bits(3, 0);
  SetBit(bits, 0, true);
  SetBit(bits, 63, true);
  SetBit(bits, 64, true);
  SetBit(bits, 130, true);
  EXPECT_TRUE(GetBit(bits, 0));
  EXPECT_TRUE(GetBit(bits, 63));
  EXPECT_TRUE(GetBit(bits, 64));
  EXPECT_TRUE(GetBit(bits, 130));
  EXPECT_FALSE(GetBit(bits, 1));
  SetBit(bits, 63, false);
  EXPECT_FALSE(GetBit(bits, 63));
  EXPECT_EQ(PackedWords(0), 0u);
  EXPECT_EQ(PackedWords(1), 1u);
  EXPECT_EQ(PackedWords(64), 1u);
  EXPECT_EQ(PackedWords(65), 2u);
}

}  // namespace
}  // namespace dstress::ot
