#include "src/core/setup.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"

namespace dstress::core {
namespace {

graph::Graph Ring(int n) {
  graph::Graph g(n);
  for (int v = 0; v < n; v++) {
    g.AddEdge(v, (v + 1) % n);
  }
  return g;
}

SetupConfig Config(int n, int block_size, uint64_t seed = 1) {
  SetupConfig config;
  config.num_nodes = n;
  config.block_size = block_size;
  config.message_bits = 4;
  config.seed = seed;
  return config;
}

TEST(TrustedSetupTest, BlocksContainSelfAndDistinctMembers) {
  graph::Graph g = Ring(12);
  TrustedSetup setup = RunTrustedSetup(Config(12, 5), g);
  ASSERT_EQ(setup.blocks.size(), 12u);
  for (int v = 0; v < 12; v++) {
    const auto& block = setup.blocks[v];
    ASSERT_EQ(block.size(), 5u);
    EXPECT_EQ(block[0], v) << "anchor must coordinate its own block";
    std::set<int> distinct(block.begin(), block.end());
    EXPECT_EQ(distinct.size(), block.size()) << "duplicate member in B_" << v;
    for (int m : block) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, 12);
    }
  }
}

TEST(TrustedSetupTest, EveryNodeHasLKeyPairs) {
  graph::Graph g = Ring(6);
  TrustedSetup setup = RunTrustedSetup(Config(6, 3), g);
  ASSERT_EQ(setup.node_keys.size(), 6u);
  std::set<std::string> all_points;
  for (const auto& member : setup.node_keys) {
    ASSERT_EQ(member.keys.size(), 4u);  // message_bits
    for (const auto& kp : member.keys) {
      auto compressed = kp.pub.point.Compress();
      all_points.insert(std::string(compressed.begin(), compressed.end()));
    }
  }
  EXPECT_EQ(all_points.size(), 6u * 4u) << "key pairs must be unique";
}

TEST(TrustedSetupTest, CertificatesExistExactlyForEdges) {
  Rng rng(4);
  graph::Graph g = graph::GenerateScaleFree(15, 2, rng);
  TrustedSetup setup = RunTrustedSetup(Config(15, 4), g);
  size_t expected = 0;
  for (auto [u, v] : g.Edges()) {
    EXPECT_TRUE(setup.edge_certificates.count({u, v})) << u << "->" << v;
    expected++;
  }
  EXPECT_EQ(setup.edge_certificates.size(), expected);
}

TEST(TrustedSetupTest, CertificateKeysAreBlindedPerEdge) {
  // Two in-edges of the same node carry certificates for the same block but
  // blinded with different neighbor keys: no shared points, and none equal
  // to the original public keys.
  graph::Graph g(4);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);  // keep every vertex connected
  TrustedSetup setup = RunTrustedSetup(Config(4, 2), g);

  const auto& cert_a = setup.edge_certificates.at({0, 2});
  const auto& cert_b = setup.edge_certificates.at({1, 2});
  ASSERT_EQ(cert_a.keys.size(), cert_b.keys.size());
  for (size_t m = 0; m < cert_a.keys.size(); m++) {
    int member = setup.blocks[2][m];
    for (size_t b = 0; b < cert_a.keys[m].size(); b++) {
      EXPECT_NE(cert_a.keys[m][b].point, cert_b.keys[m][b].point);
      EXPECT_NE(cert_a.keys[m][b].point, setup.node_keys[member].keys[b].pub.point);
    }
  }
}

TEST(TrustedSetupTest, NeighborKeyCountMatchesInDegree) {
  Rng rng(9);
  graph::Graph g = graph::GenerateErdosRenyi(10, 0.3, rng);
  TrustedSetup setup = RunTrustedSetup(Config(10, 3), g);
  for (int v = 0; v < 10; v++) {
    EXPECT_EQ(setup.neighbor_keys[v].size(), static_cast<size_t>(g.InDegree(v)));
  }
}

TEST(TrustedSetupTest, DeterministicForSeedAndDifferentAcrossSeeds) {
  graph::Graph g = Ring(8);
  TrustedSetup a = RunTrustedSetup(Config(8, 3, 7), g);
  TrustedSetup b = RunTrustedSetup(Config(8, 3, 7), g);
  TrustedSetup c = RunTrustedSetup(Config(8, 3, 8), g);
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.aggregation_block, b.aggregation_block);
  EXPECT_NE(a.blocks, c.blocks);
}

TEST(TrustedSetupTest, ExtraBlocksAreValid) {
  graph::Graph g = Ring(10);
  TrustedSetup setup = RunTrustedSetup(Config(10, 4), g);
  auto prg = crypto::ChaCha20Prg::FromSeed(3);
  for (int trial = 0; trial < 5; trial++) {
    auto block = setup.MakeExtraBlock(prg);
    ASSERT_EQ(block.size(), 4u);
    std::set<int> distinct(block.begin(), block.end());
    EXPECT_EQ(distinct.size(), block.size());
  }
}

TEST(TrustedSetupTest, BlockMembershipIsSpreadAcrossNodes) {
  // Random membership: over 40 blocks of size 4 on 40 nodes, no node may
  // monopolize membership (Sybil-resistance sanity, not a strict bound).
  graph::Graph g = Ring(40);
  TrustedSetup setup = RunTrustedSetup(Config(40, 4), g);
  std::vector<int> load(40, 0);
  for (const auto& block : setup.blocks) {
    for (int m : block) {
      load[m]++;
    }
  }
  for (int v = 0; v < 40; v++) {
    EXPECT_GE(load[v], 1);   // everyone anchors its own block
    EXPECT_LE(load[v], 16);  // expectation is 4; 16 would be wildly skewed
  }
}

}  // namespace
}  // namespace dstress::core
