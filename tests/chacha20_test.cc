#include "src/crypto/chacha20.h"

#include <gtest/gtest.h>

namespace dstress::crypto {
namespace {

// RFC 8439 §2.3.2 block function test vector.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  uint8_t key[32];
  for (int i = 0; i < 32; i++) {
    key[i] = static_cast<uint8_t>(i);
  }
  uint8_t nonce[12] = {0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00};
  uint8_t out[64];
  ChaCha20Block(key, nonce, 1, out);
  const std::string expected =
      "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e";
  EXPECT_EQ(HexEncode(out, 64), expected);
}

TEST(ChaCha20PrgTest, Deterministic) {
  auto a = ChaCha20Prg::FromSeed(123);
  auto b = ChaCha20Prg::FromSeed(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(ChaCha20PrgTest, StreamsAreIndependent) {
  auto a = ChaCha20Prg::FromSeed(123, 0);
  auto b = ChaCha20Prg::FromSeed(123, 1);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.NextByte() == b.NextByte()) {
      same++;
    }
  }
  EXPECT_LT(same, 16);  // expected ~0.25% per byte; 16/64 would be wild
}

TEST(ChaCha20PrgTest, FillCrossesBlockBoundaries) {
  auto a = ChaCha20Prg::FromSeed(9);
  auto b = ChaCha20Prg::FromSeed(9);
  Bytes big = a.NextBytes(200);
  Bytes parts;
  for (size_t chunk : {1u, 63u, 64u, 65u, 7u}) {
    Bytes part = b.NextBytes(chunk);
    parts.insert(parts.end(), part.begin(), part.end());
  }
  ASSERT_EQ(parts.size(), 200u);
  EXPECT_EQ(parts, big);
}

TEST(ChaCha20PrgTest, NextBelowIsInRangeAndRoughlyUniform) {
  auto prg = ChaCha20Prg::FromSeed(77);
  constexpr uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < 10000; i++) {
    uint64_t v = prg.NextBelow(kBound);
    ASSERT_LT(v, kBound);
    counts[v]++;
  }
  for (uint64_t v = 0; v < kBound; v++) {
    EXPECT_GT(counts[v], 800) << "bucket " << v;
    EXPECT_LT(counts[v], 1200) << "bucket " << v;
  }
}

TEST(ChaCha20PrgTest, NextScalarBelowOrderAndNonzero) {
  auto prg = ChaCha20Prg::FromSeed(5);
  U256 order = U256::FromHex("ffffffff00000000ffffffff00000000");
  for (int i = 0; i < 50; i++) {
    U256 v = prg.NextScalar(order);
    EXPECT_FALSE(v.IsZero());
    EXPECT_LT(Cmp(v, order), 0);
  }
}

TEST(ChaCha20PrgTest, BitsAreBalanced) {
  auto prg = ChaCha20Prg::FromSeed(31);
  int ones = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; i++) {
    ones += prg.NextBit() ? 1 : 0;
  }
  EXPECT_GT(ones, kTrials / 2 - 300);
  EXPECT_LT(ones, kTrials / 2 + 300);
}

}  // namespace
}  // namespace dstress::crypto
