#include "src/core/runtime.h"

#include <gtest/gtest.h>

#include "src/core/vertex_program.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"

namespace dstress::core {
namespace {

// A program whose contribution is just the state value: aggregate = sum of
// states + noise; update adds the sum of incoming messages and broadcasts
// the vertex's (constant) seed value.
VertexProgram MakeSumProgram(int degree_bound, int iterations, double noise_alpha) {
  VertexProgram program;
  program.state_bits = 16;
  program.message_bits = 8;
  program.degree_bound = degree_bound;
  program.iterations = iterations;
  program.aggregate_bits = 24;
  program.output_noise.alpha = noise_alpha;
  program.output_noise.magnitude_bits = 8;
  program.output_noise.threshold_bits = 10;
  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs,
                            circuit::Word* new_state, std::vector<circuit::Word>* out_msgs) {
    // State: low 8 bits = immutable seed, high 8 bits = accumulator.
    circuit::Word seed(state.begin(), state.begin() + 8);
    circuit::Word acc(state.begin() + 8, state.end());
    for (const auto& msg : in_msgs) {
      acc = b.Add(acc, msg);
    }
    *new_state = seed;
    new_state->insert(new_state->end(), acc.begin(), acc.end());
    out_msgs->assign(in_msgs.size(), seed);
  };
  program.build_contribution = [](circuit::Builder& b,
                                  const circuit::Word& state) -> circuit::Word {
    return b.ZeroExtend(circuit::Word(state.begin() + 8, state.end()), 24);
  };
  return program;
}

graph::Graph Ring(int n) {
  graph::Graph g(n);
  for (int v = 0; v < n; v++) {
    g.AddEdge(v, (v + 1) % n);
  }
  return g;
}

TEST(RuntimeTest, SumProgramComputesExpectedAggregate) {
  // Ring of 6 vertices, 2 iterations: each vertex accumulates its
  // predecessor's seed twice; aggregate = sum of accumulators.
  constexpr int kN = 6;
  graph::Graph g = Ring(kN);
  VertexProgram program = MakeSumProgram(1, 2, /*noise_alpha=*/1e-12);
  RuntimeConfig config;
  config.block_size = 3;
  config.seed = 5;
  Runtime runtime(config, g, program);

  std::vector<mpc::BitVector> states;
  int64_t expected = 0;
  for (int v = 0; v < kN; v++) {
    uint64_t seed_value = 10 + v;
    states.push_back(mpc::WordToBits(seed_value, 16));  // accumulator starts 0
  }
  // After iteration 1's communicate + compute, each accumulator holds the
  // predecessor's seed; after iteration 2 it holds it twice... Actually the
  // final compute is the (iterations+1)-th: messages received `iterations`
  // times.
  for (int v = 0; v < kN; v++) {
    uint64_t pred_seed = 10 + ((v + kN - 1) % kN);
    expected += static_cast<int64_t>(2 * pred_seed);
  }

  RunMetrics metrics;
  int64_t result = runtime.Run(states, &metrics);
  EXPECT_EQ(result, expected);
  EXPECT_GT(metrics.total_bytes, 0u);
  EXPECT_GT(metrics.compute.seconds, 0.0);
  EXPECT_EQ(metrics.iterations, 2);
}

TEST(RuntimeTest, DeterministicForFixedSeed) {
  graph::Graph g = Ring(5);
  VertexProgram program = MakeSumProgram(1, 1, 1e-12);
  std::vector<mpc::BitVector> states;
  for (int v = 0; v < 5; v++) {
    states.push_back(mpc::WordToBits(3 + v, 16));
  }
  RuntimeConfig config;
  config.block_size = 3;
  config.seed = 9;
  Runtime a(config, g, program);
  Runtime b(config, g, program);
  EXPECT_EQ(a.Run(states, nullptr), b.Run(states, nullptr));
}

TEST(RuntimeTest, OutputNoiseIsApplied) {
  // With alpha = 0.9 the geometric noise is nonzero with high probability;
  // across seeds the outputs should vary around the true sum.
  graph::Graph g = Ring(4);
  VertexProgram program = MakeSumProgram(1, 1, /*noise_alpha=*/0.9);
  std::vector<mpc::BitVector> states;
  int64_t true_sum = 0;
  for (int v = 0; v < 4; v++) {
    states.push_back(mpc::WordToBits(5, 16));
    true_sum += 5;
  }
  int differing = 0;
  for (uint64_t seed = 1; seed <= 8; seed++) {
    RuntimeConfig config;
    config.block_size = 3;
    config.seed = seed;
    Runtime runtime(config, g, program);
    int64_t out = runtime.Run(states, nullptr);
    if (out != true_sum) {
      differing++;
    }
    EXPECT_LT(std::abs(out - true_sum), 200) << "seed " << seed;
  }
  EXPECT_GE(differing, 4);  // noise must actually perturb most runs
}

TEST(RuntimeTest, TreeAggregationMatchesSingleLevel) {
  constexpr int kN = 9;
  graph::Graph g = Ring(kN);
  VertexProgram program = MakeSumProgram(1, 1, 1e-12);
  std::vector<mpc::BitVector> states;
  for (int v = 0; v < kN; v++) {
    states.push_back(mpc::WordToBits(7 + v, 16));
  }
  RuntimeConfig flat;
  flat.block_size = 3;
  flat.seed = 4;
  RuntimeConfig tree = flat;
  tree.aggregation_fanout = 3;
  Runtime a(flat, g, program);
  Runtime b(tree, g, program);
  EXPECT_EQ(a.Run(states, nullptr), b.Run(states, nullptr));
}

TEST(RuntimeTest, DeepAggregationTreeMatchesSingleLevel) {
  // fanout = 2 with N = 11 forces intermediate combine levels:
  // 6 leaves -> 3 -> 2 -> root, exercising the general §3.6 tree.
  constexpr int kN = 11;
  graph::Graph g = Ring(kN);
  VertexProgram program = MakeSumProgram(1, 1, 1e-12);
  std::vector<mpc::BitVector> states;
  for (int v = 0; v < kN; v++) {
    states.push_back(mpc::WordToBits(3 + 2 * v, 16));
  }
  RuntimeConfig flat;
  flat.block_size = 3;
  flat.seed = 6;
  RuntimeConfig deep = flat;
  deep.aggregation_fanout = 2;
  Runtime a(flat, g, program);
  Runtime b(deep, g, program);
  EXPECT_EQ(a.Run(states, nullptr), b.Run(states, nullptr));
}

TEST(RuntimeTest, OtTriplesMatchDealerTriples) {
  constexpr int kN = 4;
  graph::Graph g = Ring(kN);
  VertexProgram program = MakeSumProgram(1, 1, 1e-12);
  std::vector<mpc::BitVector> states;
  for (int v = 0; v < kN; v++) {
    states.push_back(mpc::WordToBits(2 + v, 16));
  }
  RuntimeConfig dealer;
  dealer.block_size = 3;
  dealer.seed = 2;
  RuntimeConfig ot = dealer;
  ot.use_ot_triples = true;
  Runtime a(dealer, g, program);
  Runtime b(ot, g, program);
  int64_t dealer_result = a.Run(states, nullptr);
  int64_t ot_result = b.Run(states, nullptr);
  EXPECT_EQ(dealer_result, ot_result);
  // OT triple generation shows up as extra traffic.
  EXPECT_GT(b.network().TotalBytes(), a.network().TotalBytes());
}

TEST(RuntimeTest, EisenbergNoeEndToEndMatchesReference) {
  Rng rng(31);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 12;
  topo.core_size = 4;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  finance::WorkloadParams wp;
  wp.core_size = 4;
  finance::ShockParams shock;
  shock.shocked_banks = {0};
  finance::EnInstance instance = finance::MakeEnWorkload(g, wp, shock);

  finance::EnProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 4;
  params.noise_alpha = 1e-12;  // effectively no output noise
  VertexProgram program = finance::MakeEnProgram(params);

  RuntimeConfig config;
  config.block_size = 3;
  config.seed = 3;
  Runtime runtime(config, g, program);
  int64_t mpc_tds = runtime.Run(finance::MakeEnInitialStates(instance, params), nullptr);
  uint64_t reference_tds = finance::EnSolveFixed(instance, params);
  EXPECT_EQ(mpc_tds, static_cast<int64_t>(reference_tds));
}

TEST(RuntimeTest, EgjEndToEndMatchesReference) {
  Rng rng(32);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 10;
  topo.core_size = 4;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  finance::WorkloadParams wp;
  wp.core_size = 4;
  wp.threshold_ratio = 0.8;
  finance::ShockParams shock;
  shock.shocked_banks = {0, 1};
  finance::EgjInstance instance = finance::MakeEgjWorkload(g, wp, shock);

  finance::EgjProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 3;
  params.noise_alpha = 1e-12;
  VertexProgram program = finance::MakeEgjProgram(params);

  RuntimeConfig config;
  config.block_size = 3;
  config.seed = 8;
  Runtime runtime(config, g, program);
  int64_t mpc_tds = runtime.Run(finance::MakeEgjInitialStates(instance, params), nullptr);
  uint64_t reference_tds = finance::EgjSolveFixed(instance, params);
  EXPECT_EQ(mpc_tds, static_cast<int64_t>(reference_tds));
}

TEST(RuntimeTest, MetricsBreakdownIsConsistent) {
  graph::Graph g = Ring(5);
  VertexProgram program = MakeSumProgram(1, 2, 1e-12);
  std::vector<mpc::BitVector> states(5, mpc::WordToBits(1, 16));
  RuntimeConfig config;
  config.block_size = 3;
  Runtime runtime(config, g, program);
  RunMetrics metrics;
  runtime.Run(states, &metrics);
  uint64_t phase_sum = metrics.init.bytes + metrics.compute.bytes + metrics.communicate.bytes +
                       metrics.aggregate.bytes;
  EXPECT_EQ(phase_sum, metrics.total_bytes);
  EXPECT_GT(metrics.update_and_gates, 0u);
  EXPECT_GT(metrics.aggregate_and_gates, 0u);
  EXPECT_NEAR(metrics.avg_bytes_per_node, static_cast<double>(metrics.total_bytes) / 5, 1e-6);
  EXPECT_FALSE(metrics.ToString().empty());
}

TEST(SetupTest, BlocksContainOwnerAndAreDistinct) {
  Rng rng(33);
  graph::Graph g = graph::GenerateErdosRenyi(20, 0.2, rng);
  SetupConfig config;
  config.num_nodes = 20;
  config.block_size = 5;
  config.message_bits = 8;
  TrustedSetup setup = RunTrustedSetup(config, g);
  ASSERT_EQ(setup.blocks.size(), 20u);
  for (int v = 0; v < 20; v++) {
    ASSERT_EQ(setup.blocks[v].size(), 5u);
    EXPECT_EQ(setup.blocks[v][0], v);
    for (size_t a = 0; a < 5; a++) {
      for (size_t b = a + 1; b < 5; b++) {
        EXPECT_NE(setup.blocks[v][a], setup.blocks[v][b]);
      }
    }
  }
  EXPECT_EQ(setup.aggregation_block.size(), 5u);
  // One certificate per directed edge; certificate keys must differ from
  // the members' raw identity keys (they are blinded).
  EXPECT_EQ(setup.edge_certificates.size(), static_cast<size_t>(g.num_edges()));
  for (const auto& [edge, cert] : setup.edge_certificates) {
    int j = edge.second;
    for (int m = 0; m < 5; m++) {
      int member = setup.blocks[j][m];
      EXPECT_NE(cert.keys[m][0].point, setup.node_keys[member].keys[0].pub.point);
    }
  }
}

TEST(SetupTest, NeighborKeysPerInSlot) {
  Rng rng(34);
  graph::Graph g = graph::GenerateErdosRenyi(15, 0.2, rng);
  SetupConfig config;
  config.num_nodes = 15;
  config.block_size = 4;
  config.message_bits = 6;
  TrustedSetup setup = RunTrustedSetup(config, g);
  for (int v = 0; v < 15; v++) {
    EXPECT_EQ(setup.neighbor_keys[v].size(), static_cast<size_t>(g.InDegree(v)));
  }
}

}  // namespace
}  // namespace dstress::core
