#include "src/net/sim_network.h"

#include <gtest/gtest.h>

#include <thread>

namespace dstress::net {
namespace {

TEST(SimNetworkTest, FifoPerChannel) {
  SimNetwork net(2);
  for (uint8_t i = 0; i < 10; i++) {
    net.Send(0, 1, Bytes{i});
  }
  for (uint8_t i = 0; i < 10; i++) {
    EXPECT_EQ(net.Recv(1, 0), Bytes{i});
  }
}

TEST(SimNetworkTest, SessionsAreIsolated) {
  SimNetwork net(2);
  net.Send(0, 1, Bytes{1}, /*session=*/100);
  net.Send(0, 1, Bytes{2}, /*session=*/200);
  // Receiving on session 200 first must not see session 100's message.
  EXPECT_EQ(net.Recv(1, 0, 200), Bytes{2});
  EXPECT_EQ(net.Recv(1, 0, 100), Bytes{1});
}

TEST(SimNetworkTest, DirectionsAreIsolated) {
  SimNetwork net(2);
  net.Send(0, 1, Bytes{1});
  net.Send(1, 0, Bytes{2});
  EXPECT_EQ(net.Recv(0, 1), Bytes{2});
  EXPECT_EQ(net.Recv(1, 0), Bytes{1});
}

TEST(SimNetworkTest, SelfChannelWorks) {
  SimNetwork net(1);
  net.Send(0, 0, Bytes{42});
  EXPECT_EQ(net.Recv(0, 0), Bytes{42});
}

TEST(SimNetworkTest, RecvBlocksUntilSend) {
  SimNetwork net(2);
  Bytes received;
  std::thread receiver([&] { received = net.Recv(1, 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net.Send(0, 1, Bytes{9});
  receiver.join();
  EXPECT_EQ(received, Bytes{9});
}

TEST(SimNetworkTest, TrafficAccounting) {
  SimNetwork net(3);
  net.Send(0, 1, Bytes(100));
  net.Send(0, 2, Bytes(50));
  net.Send(1, 0, Bytes(25));
  net.Recv(1, 0);
  net.Recv(2, 0);
  net.Recv(0, 1);

  TrafficStats s0 = net.NodeStats(0);
  EXPECT_EQ(s0.bytes_sent, 150u);
  EXPECT_EQ(s0.bytes_received, 25u);
  EXPECT_EQ(s0.messages_sent, 2u);
  EXPECT_EQ(s0.messages_received, 1u);

  EXPECT_EQ(net.TotalBytes(), 175u);
  EXPECT_NEAR(net.AverageBytesPerNode(), 175.0 / 3, 1e-9);
  EXPECT_EQ(net.MaxBytesPerNode(), 175u);  // node 0: 150 sent + 25 received
}

TEST(SimNetworkTest, ResetStatsClearsCounters) {
  SimNetwork net(2);
  net.Send(0, 1, Bytes(10));
  net.Recv(1, 0);
  net.ResetStats();
  EXPECT_EQ(net.TotalBytes(), 0u);
  EXPECT_EQ(net.NodeStats(1).bytes_received, 0u);
}

TEST(SimNetworkTest, ManyThreadsManySessions) {
  constexpr int kNodes = 8;
  constexpr int kMessagesPerPair = 50;
  SimNetwork net(kNodes);
  std::vector<std::thread> threads;
  // Every ordered pair gets a private session; senders and receivers run
  // concurrently.
  for (int from = 0; from < kNodes; from++) {
    threads.emplace_back([&net, from] {
      for (int to = 0; to < kNodes; to++) {
        for (uint8_t m = 0; m < kMessagesPerPair; m++) {
          net.Send(from, to, Bytes{m}, static_cast<SessionId>(from * 100 + to));
        }
      }
    });
  }
  std::vector<int> errors(kNodes, 0);
  for (int to = 0; to < kNodes; to++) {
    threads.emplace_back([&net, &errors, to] {
      for (int from = 0; from < kNodes; from++) {
        for (uint8_t m = 0; m < kMessagesPerPair; m++) {
          Bytes got = net.Recv(to, from, static_cast<SessionId>(from * 100 + to));
          if (got != Bytes{m}) {
            errors[to]++;
          }
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int to = 0; to < kNodes; to++) {
    EXPECT_EQ(errors[to], 0) << "receiver " << to;
  }
  EXPECT_EQ(net.TotalBytes(), static_cast<uint64_t>(kNodes) * kNodes * kMessagesPerPair);
}

}  // namespace
}  // namespace dstress::net
