// Scenario-ensemble subsystem tests (src/ensemble + the engine/runtime
// ensemble planes).
//
// The load-bearing property is per-lane fidelity: scenario s of an ensemble
// run must release the figure that an independent solo run of
// ensemble::SoloSpecFor(base, scenarios[s]) releases, bit-exactly, in both
// execution modes — the lanes share one lockstep pass but must be
// observationally independent. Width-1 ensembles must additionally be
// traffic-identical to a plain run (same per-node TrafficStats), which pins
// the W-identical case to the seed schedule.

#include "src/ensemble/ensemble.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/engine/engine.h"
#include "src/ensemble/spec.h"

namespace dstress::ensemble {
namespace {

using engine::ContagionModel;
using engine::Engine;
using engine::ExecutionMode;
using engine::RunSpec;

RunSpec CleartextBase(int num_banks) {
  RunSpec spec;
  spec.topology.kind = engine::TopologySpec::Kind::kScaleFree;
  spec.topology.num_vertices = num_banks;
  spec.topology.links_per_vertex = 2;
  spec.topology.degree_cap = 4;
  spec.model = ContagionModel::kEisenbergNoe;
  spec.mode = ExecutionMode::kCleartextFast;
  spec.shock.shocked_banks = {0};
  spec.seed = 11;
  return spec;
}

RunSpec SecureBase(int num_banks, int iterations) {
  RunSpec spec;
  spec.topology.kind = engine::TopologySpec::Kind::kScaleFree;
  spec.topology.num_vertices = num_banks;
  spec.topology.links_per_vertex = 2;
  spec.topology.degree_cap = 3;
  spec.model = ContagionModel::kEisenbergNoe;
  spec.mode = ExecutionMode::kSecure;
  spec.block_size = 2;
  spec.iterations = iterations;
  spec.shock.shocked_banks = {0};
  spec.seed = 11;
  return spec;
}

// Runs the ensemble and asserts every lane against its independent solo run.
void ExpectLanesMatchSolo(const RunSpec& base) {
  ASSERT_TRUE(base.ensemble.has_value());
  std::vector<Scenario> scenarios = MaterializeScenarios(
      *base.ensemble, base.shock, base.topology.num_vertices);
  EnsembleReport report = Engine(base).RunEnsemble();
  ASSERT_EQ(report.scenarios.size(), scenarios.size());
  for (size_t s = 0; s < scenarios.size(); s++) {
    RunSpec solo = SoloSpecFor(base, scenarios[s]);
    engine::RunReport solo_report = Engine(solo).Run();
    EXPECT_EQ(report.scenarios[s].released, solo_report.released)
        << "lane " << s << " (" << scenarios[s].label << ")";
    ASSERT_TRUE(report.scenarios[s].has_reference);
    EXPECT_EQ(report.scenarios[s].reference, solo_report.reference)
        << "lane " << s << " (" << scenarios[s].label << ")";
  }
}

// --- scenario materialization ----------------------------------------------

TEST(MaterializeScenariosTest, DrawsAreDeterministicDistinctAndInRange) {
  EnsembleSpec es;
  es.shock_draws = 32;
  es.draw_seed = 5;
  es.banks_per_draw = 3;
  es.has_magnitude_range = true;
  es.magnitude_lo = 0.2;
  es.magnitude_hi = 0.7;
  finance::ShockParams base;
  base.shocked_banks = {0};
  std::vector<Scenario> a = MaterializeScenarios(es, base, 20);
  std::vector<Scenario> b = MaterializeScenarios(es, base, 20);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (size_t k = 0; k < a.size(); k++) {
    EXPECT_EQ(a[k].shock.shocked_banks, b[k].shock.shocked_banks) << "draw " << k;
    EXPECT_DOUBLE_EQ(a[k].shock.survival, b[k].shock.survival) << "draw " << k;
    ASSERT_EQ(a[k].shock.shocked_banks.size(), 3u);
    std::set<int> distinct(a[k].shock.shocked_banks.begin(), a[k].shock.shocked_banks.end());
    EXPECT_EQ(distinct.size(), 3u) << "draw " << k << " repeated a bank";
    for (int bank : a[k].shock.shocked_banks) {
      EXPECT_GE(bank, 0);
      EXPECT_LT(bank, 20);
    }
    EXPECT_GE(a[k].shock.survival, 0.2);
    EXPECT_LE(a[k].shock.survival, 0.7);
    EXPECT_FALSE(a[k].workload_seed.has_value());
  }
}

TEST(MaterializeScenariosTest, ExplicitScenariosPassThrough) {
  EnsembleSpec es;
  Scenario one;
  one.shock.shocked_banks = {2, 3};
  one.label = "pair";
  es.scenarios.push_back(one);
  finance::ShockParams base;
  std::vector<Scenario> out = MaterializeScenarios(es, base, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].shock.shocked_banks, (std::vector<int>{2, 3}));
  EXPECT_EQ(out[0].label, "pair");
}

TEST(MaterializeScenariosTest, PerturbWorkloadAssignsDistinctSeeds) {
  EnsembleSpec es;
  es.shock_draws = 8;
  es.draw_seed = 3;
  es.perturb_workload = true;
  finance::ShockParams base;
  base.shocked_banks = {0};
  std::vector<Scenario> out = MaterializeScenarios(es, base, 12);
  std::set<uint64_t> seeds;
  for (const Scenario& sc : out) {
    ASSERT_TRUE(sc.workload_seed.has_value());
    seeds.insert(*sc.workload_seed);
  }
  EXPECT_EQ(seeds.size(), out.size()) << "workload seeds must be distinct";
}

// --- reduce ----------------------------------------------------------------

TEST(ReduceEnsembleTest, QuantileNearestRank) {
  std::vector<int64_t> sorted = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(QuantileNearestRank(sorted, 0.0), 10);
  EXPECT_EQ(QuantileNearestRank(sorted, 0.05), 10);
  EXPECT_EQ(QuantileNearestRank(sorted, 0.25), 30);
  EXPECT_EQ(QuantileNearestRank(sorted, 0.50), 50);
  EXPECT_EQ(QuantileNearestRank(sorted, 0.75), 80);
  EXPECT_EQ(QuantileNearestRank(sorted, 1.0), 100);
}

TEST(ReduceEnsembleTest, MomentsQuantilesAndBands) {
  EnsembleReport report;
  for (int64_t v : {4, 1, 3, 2}) {
    ScenarioResult sc;
    sc.released = v;
    report.scenarios.push_back(sc);
  }
  // Bank 0 defaults in every scenario, bank 1 in half, bank 2 never.
  std::vector<std::vector<uint8_t>> defaults = {
      {1, 1, 0}, {1, 0, 0}, {1, 1, 0}, {1, 0, 0}};
  ReduceEnsemble(defaults, &report);
  EXPECT_DOUBLE_EQ(report.mean, 2.5);
  EXPECT_NEAR(report.stddev, 1.29, 0.01);
  EXPECT_EQ(report.min_released, 1);
  EXPECT_EQ(report.max_released, 4);
  EXPECT_EQ(report.p50, 2);
  EXPECT_EQ(report.p95, 4);
  ASSERT_EQ(report.default_probability.size(), 3u);
  EXPECT_DOUBLE_EQ(report.default_probability[0], 1.0);
  EXPECT_DOUBLE_EQ(report.default_band_lo[0], 1.0);
  EXPECT_DOUBLE_EQ(report.default_band_hi[0], 1.0);
  EXPECT_DOUBLE_EQ(report.default_probability[1], 0.5);
  EXPECT_GT(report.default_band_hi[1], 0.5);
  EXPECT_LT(report.default_band_lo[1], 0.5);
  EXPECT_DOUBLE_EQ(report.default_probability[2], 0.0);
}

// --- cleartext lane fidelity ----------------------------------------------

TEST(EnsembleCleartextTest, SingleScenarioMatchesSolo) {
  RunSpec spec = CleartextBase(40);
  spec.ensemble.emplace();
  Scenario sc;
  sc.shock = spec.shock;
  spec.ensemble->scenarios.push_back(sc);
  ExpectLanesMatchSolo(spec);
}

TEST(EnsembleCleartextTest, ThreeExplicitScenariosMatchSolo) {
  RunSpec spec = CleartextBase(40);
  spec.ensemble.emplace();
  for (std::vector<int> banks : {std::vector<int>{0}, {1, 2}, {5, 7, 9}}) {
    Scenario sc;
    sc.shock.shocked_banks = std::move(banks);
    spec.ensemble->scenarios.push_back(sc);
  }
  ExpectLanesMatchSolo(spec);
}

TEST(EnsembleCleartextTest, SixtyFourDrawsMatchSolo) {
  RunSpec spec = CleartextBase(40);
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 64;
  spec.ensemble->draw_seed = 9;
  spec.ensemble->banks_per_draw = 2;
  spec.ensemble->has_magnitude_range = true;
  spec.ensemble->magnitude_lo = 0.0;
  spec.ensemble->magnitude_hi = 0.6;
  ExpectLanesMatchSolo(spec);
}

TEST(EnsembleCleartextTest, PerturbedWorkloadLanesMatchSolo) {
  RunSpec spec = CleartextBase(24);
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 8;
  spec.ensemble->draw_seed = 4;
  spec.ensemble->perturb_workload = true;
  ExpectLanesMatchSolo(spec);
}

// A >64-scenario ensemble exercises the chunked (multi-pass) plane.
TEST(EnsembleCleartextTest, ChunkedEnsembleBeyondSixtyFourLanes) {
  RunSpec spec = CleartextBase(16);
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 70;
  spec.ensemble->draw_seed = 2;
  spec.ensemble->has_magnitude_range = true;
  spec.ensemble->magnitude_lo = 0.0;
  spec.ensemble->magnitude_hi = 0.5;
  ExpectLanesMatchSolo(spec);
}

TEST(EnsembleCleartextTest, Width1TrafficIdenticalToSolo) {
  RunSpec base = CleartextBase(30);
  RunSpec with_ensemble = base;
  with_ensemble.ensemble.emplace();
  Scenario sc;
  sc.shock = base.shock;
  with_ensemble.ensemble->scenarios.push_back(sc);

  Engine solo(base);
  engine::RunReport solo_report = solo.Run();
  Engine ens(with_ensemble);
  EnsembleReport report = ens.RunEnsemble();

  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].released, solo_report.released);
  EXPECT_EQ(report.metrics.total_bytes, solo_report.metrics.total_bytes);
  ASSERT_EQ(ens.transport().num_nodes(), solo.transport().num_nodes());
  for (int v = 0; v < base.topology.num_vertices; v++) {
    net::TrafficStats a = ens.transport().NodeStats(v);
    net::TrafficStats b = solo.transport().NodeStats(v);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "node " << v;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "node " << v;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "node " << v;
  }
}

// --- secure (dealer) lane fidelity ----------------------------------------

TEST(EnsembleSecureTest, SingleScenarioTrafficIdenticalToSolo) {
  RunSpec base = SecureBase(8, 2);
  RunSpec with_ensemble = base;
  with_ensemble.ensemble.emplace();
  Scenario sc;
  sc.shock = base.shock;
  with_ensemble.ensemble->scenarios.push_back(sc);

  Engine solo(base);
  engine::RunReport solo_report = solo.Run();
  Engine ens(with_ensemble);
  EnsembleReport report = ens.RunEnsemble();

  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].released, solo_report.released);
  EXPECT_EQ(report.metrics.total_bytes, solo_report.metrics.total_bytes);
  for (int v = 0; v < ens.transport().num_nodes(); v++) {
    net::TrafficStats a = ens.transport().NodeStats(v);
    net::TrafficStats b = solo.transport().NodeStats(v);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "node " << v;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "node " << v;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "node " << v;
  }
}

TEST(EnsembleSecureTest, ThreeExplicitScenariosMatchSolo) {
  RunSpec spec = SecureBase(8, 2);
  spec.ensemble.emplace();
  for (std::vector<int> banks : {std::vector<int>{0}, {1, 2}, {3}}) {
    Scenario sc;
    sc.shock.shocked_banks = std::move(banks);
    spec.ensemble->scenarios.push_back(sc);
  }
  ExpectLanesMatchSolo(spec);
}

TEST(EnsembleSecureTest, SixtyFourDrawsMatchSolo) {
  RunSpec spec = SecureBase(6, 1);
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 64;
  spec.ensemble->draw_seed = 13;
  spec.ensemble->has_magnitude_range = true;
  spec.ensemble->magnitude_lo = 0.0;
  spec.ensemble->magnitude_hi = 0.8;
  ExpectLanesMatchSolo(spec);
}

// --- privacy gate ----------------------------------------------------------

TEST(EnsembleBudgetTest, OverBudgetEnsembleAbortsNamingOverrun) {
  RunSpec spec = CleartextBase(16);
  spec.epsilon = 0.5;
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 4;
  spec.ensemble->draw_seed = 1;
  spec.ensemble->epsilon_budget = 1.0;  // 4 x 0.5 = 2.0 > 1.0
  EXPECT_DEATH(Engine(spec).RunEnsemble(), "exceeds remaining budget");
}

TEST(EnsembleBudgetTest, WithinBudgetEnsembleRuns) {
  RunSpec spec = CleartextBase(16);
  spec.epsilon = 0.2;
  spec.ensemble.emplace();
  spec.ensemble->shock_draws = 4;
  spec.ensemble->draw_seed = 1;
  spec.ensemble->epsilon_budget = 1.0;  // 4 x 0.2 = 0.8 fits
  EnsembleReport report = Engine(spec).RunEnsemble();
  EXPECT_EQ(report.scenarios.size(), 4u);
  EXPECT_DOUBLE_EQ(report.epsilon_total, 0.8);
}

}  // namespace
}  // namespace dstress::ensemble
