// TCP bootstrap handshake coverage: the multi-machine rendezvous (external
// nodes dialing the driver by host:port, per-bank endpoints in PEERS) and
// its failure paths. Every failure must be loud and attributable — a wrong
// protocol version, a duplicate bank registration, a bank placed on the
// wrong machine, or a bank that never dials in all abort the driver with a
// message naming the problem, never hang the deployment.
#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/tcp_node.h"
#include "src/net/tcp_socket.h"
#include "src/net/tcp_network.h"
#include "src/net/transport_spec.h"

namespace dstress::net {
namespace {

// Binds an OS-assigned port and releases it: the standard trick for
// choosing a rendezvous port a test can hand to both sides. (Racy in
// principle, fine on a loopback CI host.)
int PickUnusedPort() {
  int fd = TcpListen("127.0.0.1", 0, 1);
  int port = TcpListenPort(fd);
  close(fd);
  return port;
}

TransportSpec ExternalSpec(int port, int timeout_ms) {
  TransportSpec spec = TcpTransportSpec("127.0.0.1", port);
  spec.external_nodes = true;
  spec.bootstrap_timeout_ms = timeout_ms;
  return spec;
}

TcpNodeConfig NodeConfig(int bank, int num_nodes, int driver_port) {
  TcpNodeConfig config;
  config.node_id = bank;
  config.num_nodes = num_nodes;
  config.driver_host = "127.0.0.1";
  config.driver_port = driver_port;
  return config;
}

// External mode end to end, in process: the driver spawns nothing; node
// loops started independently dial the rendezvous by host:port and the
// mesh still delivers FIFO traffic with exact metering.
TEST(TcpBootstrapTest, ExternalNodesFormMeshWithoutSpawning) {
  constexpr int kNodes = 3;
  int port = PickUnusedPort();
  std::vector<std::thread> nodes;
  for (int bank = 0; bank < kNodes; bank++) {
    nodes.emplace_back([bank, port] {
      EXPECT_EQ(RunTcpNode(NodeConfig(bank, kNodes, port)), 0);
    });
  }
  {
    TransportSpec spec = ExternalSpec(port, 30000);
    // Pin every bank to the loopback host (ports stay OS-assigned): the
    // scenario-level placement check in its accepting form.
    spec.node_endpoints.assign(kNodes, PeerEndpoint{"127.0.0.1", 0});
    TcpNetwork net(kNodes, spec);
    net.Send(0, 2, Bytes{1, 2}, 4);
    net.SendBatch(2, 1, {Bytes{3}, Bytes{4}}, 4);
    EXPECT_EQ(net.Recv(2, 0, 4), (Bytes{1, 2}));
    EXPECT_EQ(net.Recv(1, 2, 4), Bytes{3});
    EXPECT_EQ(net.Recv(1, 2, 4), Bytes{4});
    EXPECT_EQ(net.NodeStats(0).bytes_sent, 2u);
    EXPECT_EQ(net.NodeStats(2).bytes_sent, 2u);
    EXPECT_EQ(net.NodeStats(1).bytes_received, 2u);
  }  // driver teardown EOFs the nodes, which then exit cleanly
  for (std::thread& node : nodes) {
    node.join();
  }
}

TEST(TcpBootstrapTest, BankThatNeverDialsInTimesOutWithClearError) {
  EXPECT_DEATH(
      {
        // One bank expected, none started: the driver must give up after
        // the bootstrap timeout and say who it was waiting for.
        TcpNetwork net(1, ExternalSpec(PickUnusedPort(), 300));
      },
      "0 of 1 banks registered within 300 ms");
}

TEST(TcpBootstrapTest, WrongProtocolVersionAborts) {
  EXPECT_DEATH(
      {
        int port = PickUnusedPort();
        std::thread imposter([port] {
          int fd = TcpConnect("127.0.0.1", port, 5000);
          WireFrame hello = MakeHelloFrame(0, PeerEndpoint{"127.0.0.1", 1});
          hello.payload[1] = kBootstrapProtocolVersion + 7;  // a mismatched build
          Bytes encoded = EncodeFrame(hello);
          TcpWriteAll(fd, encoded.data(), encoded.size());
          // Keep the socket open; the driver aborts the whole process.
          std::this_thread::sleep_for(std::chrono::seconds(10));
        });
        TcpNetwork net(1, ExternalSpec(port, 5000));
      },
      "speaks handshake protocol version");
}

TEST(TcpBootstrapTest, DuplicateBankRegistrationAborts) {
  EXPECT_DEATH(
      {
        int port = PickUnusedPort();
        std::vector<std::thread> clones;
        for (int i = 0; i < 2; i++) {
          clones.emplace_back([port] {
            int fd = TcpConnect("127.0.0.1", port, 5000);
            Bytes hello = EncodeFrame(MakeHelloFrame(0, PeerEndpoint{"127.0.0.1", 1}));
            TcpWriteAll(fd, hello.data(), hello.size());
            std::this_thread::sleep_for(std::chrono::seconds(10));
          });
        }
        // Two connections both claim bank 0 of 2: whichever arrives second
        // must trip the duplicate-registration abort.
        TcpNetwork net(2, ExternalSpec(port, 5000));
      },
      "bank 0 registered twice");
}

TEST(TcpBootstrapTest, BankOnWrongHostAborts) {
  EXPECT_DEATH(
      {
        int port = PickUnusedPort();
        std::thread node([port] { RunTcpNode(NodeConfig(0, 1, port)); });
        TransportSpec spec = ExternalSpec(port, 5000);
        // The scenario placed bank 0 on another machine; the loopback
        // registration must be rejected at rendezvous.
        PeerEndpoint elsewhere;
        elsewhere.host = "10.99.99.99";
        spec.node_endpoints.push_back(elsewhere);
        TcpNetwork net(1, spec);
      },
      "the scenario placed it");
}

TEST(TcpBootstrapTest, ExternalModeRequiresFixedPort) {
  EXPECT_DEATH({ TcpNetwork net(1, ExternalSpec(/*port=*/0, 300)); },
               "needs a fixed rendezvous port");
}

}  // namespace
}  // namespace dstress::net
