#include "src/finance/eisenberg_noe.h"

#include <gtest/gtest.h>

#include "src/finance/workload.h"
#include "src/graph/generators.h"

namespace dstress::finance {
namespace {

using mpc::AppendBits;
using mpc::BitsToWord;
using mpc::BitVector;

EnProgramParams DefaultParams(const graph::Graph& g, int iterations) {
  EnProgramParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = iterations;
  return params;
}

// A tiny hand-checkable instance: bank 1 owes 0 and 2, has no cash after a
// shock; bank 0 owes 2.
struct TinyInstance {
  graph::Graph g{3};
  EnInstance instance;

  TinyInstance() {
    g.AddEdge(1, 0);
    g.AddEdge(1, 2);
    g.AddEdge(0, 2);
    instance.graph = &g;
    instance.cash = {50, 10, 5};
    // debts aligned with out-neighbors: bank1 -> {0: 30, 2: 30}, bank0 -> {2: 20}.
    instance.debts = {{20}, {30, 30}, {}};
  }
};

TEST(EnModelTest, TotalDebtComputation) {
  TinyInstance tiny;
  EXPECT_EQ(tiny.instance.TotalDebtOf(0), 20u);
  EXPECT_EQ(tiny.instance.TotalDebtOf(1), 60u);
  EXPECT_EQ(tiny.instance.TotalDebtOf(2), 0u);
}

TEST(EnModelTest, ExactSolverHandSolvableCase) {
  TinyInstance tiny;
  // Bank 1: liquid = 10 (no incoming debts), totalDebt 60 -> p1 = 1/6.
  // Bank 0: liquid = 50 + 30*p1 = 55, totalDebt 20 -> p0 = 1 (solvent).
  // Bank 2: no debt -> p2 = 1.
  std::vector<double> p;
  double tds = EnSolveExact(tiny.instance, /*iterations=*/5, &p);
  EXPECT_NEAR(p[1], 10.0 / 60.0, 1e-9);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
  EXPECT_NEAR(p[2], 1.0, 1e-9);
  EXPECT_NEAR(tds, 60.0 * (1 - 10.0 / 60.0), 1e-9);
}

TEST(EnModelTest, FixedSolverTracksExactSolver) {
  Rng rng(1);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 30;
  topo.core_size = 6;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 6;
  ShockParams shock;
  shock.shocked_banks = {0, 1};
  EnInstance instance = MakeEnWorkload(g, wp, shock);
  EnProgramParams params = DefaultParams(g, 6);

  uint64_t fixed_tds = EnSolveFixed(instance, params);
  double exact_tds = EnSolveExact(instance, 6);
  // Fixed-point quantization error: bounded by ~N units plus rounding of
  // each prorate (1/2^F relative).
  double tolerance = 0.05 * std::max(exact_tds, 50.0) + 30;
  EXPECT_NEAR(static_cast<double>(fixed_tds), exact_tds, tolerance);
}

TEST(EnModelTest, NoShockMeansNoShortfallOnSolventNetwork) {
  // Generous cash, small debts: everyone pays in full.
  Rng rng(2);
  graph::Graph g = graph::GenerateErdosRenyi(20, 0.2, rng);
  WorkloadParams wp;
  wp.base_cash = 500;
  wp.base_debt = 10;
  EnInstance instance = MakeEnWorkload(g, wp, ShockParams{});
  EnProgramParams params = DefaultParams(g, 5);
  EXPECT_EQ(EnSolveFixed(instance, params), 0u);
  EXPECT_NEAR(EnSolveExact(instance, 5), 0.0, 1e-9);
}

TEST(EnModelTest, ShortfallMonotoneInShockSize) {
  Rng rng(3);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 40;
  topo.core_size = 8;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 8;
  EnProgramParams params = DefaultParams(g, 6);

  uint64_t previous = 0;
  for (int shocked = 0; shocked <= 8; shocked += 2) {
    ShockParams shock;
    for (int b = 0; b < shocked; b++) {
      shock.shocked_banks.push_back(b);
    }
    uint64_t tds = EnSolveFixed(MakeEnWorkload(g, wp, shock), params);
    EXPECT_GE(tds, previous) << shocked << " banks shocked";
    previous = tds;
  }
  EXPECT_GT(previous, 0u);
}

TEST(EnModelTest, ProratesDecreaseMonotonicallyOverIterations) {
  // Eisenberg–Noe converges monotonically from p = 1 downward.
  Rng rng(4);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 25;
  topo.core_size = 5;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 5;
  ShockParams shock;
  shock.shocked_banks = {0, 1, 2};
  EnInstance instance = MakeEnWorkload(g, wp, shock);

  std::vector<uint64_t> prev;
  for (int iters = 0; iters <= 6; iters++) {
    EnProgramParams params = DefaultParams(g, iters);
    std::vector<uint64_t> prorate;
    EnSolveFixed(instance, params, &prorate);
    if (!prev.empty()) {
      for (size_t v = 0; v < prorate.size(); v++) {
        EXPECT_LE(prorate[v], prev[v]) << "vertex " << v << " at iter " << iters;
      }
    }
    prev = prorate;
  }
}

TEST(EnModelTest, ConvergesWithinLogNIterations) {
  // Appendix C: I = log2 N suffices on core-periphery networks.
  Rng rng(5);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 50;
  topo.core_size = 10;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
  WorkloadParams wp;
  wp.core_size = 10;
  ShockParams shock;
  shock.shocked_banks = {0, 1};
  EnInstance instance = MakeEnWorkload(g, wp, shock);

  int log_n = 6;  // ceil(log2 50)
  EnProgramParams at_log = DefaultParams(g, log_n);
  EnProgramParams beyond = DefaultParams(g, 3 * log_n);
  uint64_t tds_log = EnSolveFixed(instance, at_log);
  uint64_t tds_converged = EnSolveFixed(instance, beyond);
  double rel_gap = tds_converged == 0
                       ? 0.0
                       : std::abs(static_cast<double>(tds_log) -
                                  static_cast<double>(tds_converged)) /
                             static_cast<double>(tds_converged);
  EXPECT_LT(rel_gap, 0.05);
}

TEST(EnCircuitTest, UpdateCircuitMatchesFixedSolverOneStep) {
  TinyInstance tiny;
  EnProgramParams params = DefaultParams(tiny.g, 1);
  core::VertexProgram program = MakeEnProgram(params);
  circuit::Circuit update = core::BuildUpdateCircuit(program);
  auto states = MakeEnInitialStates(tiny.instance, params);

  const int w = params.format.value_bits;
  // Evaluate bank 1's first update with no incoming messages: its prorate
  // should become floor((10 << F) / 60) and shortfall messages
  // debts*(1-p)>>F.
  BitVector input = states[1];
  for (int d = 0; d < params.degree_bound; d++) {
    AppendBits(&input, mpc::WordToBits(0, program.message_bits));
  }
  auto out = update.Eval(input);
  uint64_t prorate = BitsToWord(out, 2 * w, w);
  uint64_t expected_prorate = (10ull << params.format.frac_bits) / 60;
  EXPECT_EQ(prorate, expected_prorate);
  // First out message (to bank 0, debt 30).
  uint64_t msg0 = BitsToWord(out, static_cast<size_t>(program.state_bits), w);
  uint64_t expected_msg =
      (30ull * (params.format.One() - expected_prorate)) >> params.format.frac_bits;
  EXPECT_EQ(msg0, expected_msg);
}

TEST(EnCircuitTest, ContributionCircuitComputesShortfall) {
  graph::Graph g(2);
  g.AddEdge(0, 1);
  EnProgramParams params;
  params.degree_bound = 1;
  params.iterations = 1;
  core::VertexProgram program = MakeEnProgram(params);

  circuit::Builder b;
  circuit::Word state = b.InputWord(program.state_bits);
  b.OutputWord(program.build_contribution(b, state));
  circuit::Circuit c = b.Build();

  // State with totalDebt=100, prorate=0.5 (128/256 at F=8): shortfall 50.
  const int w = params.format.value_bits;
  BitVector state_bits;
  AppendBits(&state_bits, mpc::WordToBits(0, w));       // cash
  AppendBits(&state_bits, mpc::WordToBits(100, w));     // totalDebt
  AppendBits(&state_bits, mpc::WordToBits(128, w));     // prorate = 0.5
  AppendBits(&state_bits, mpc::WordToBits(0, w));       // debts[0]
  AppendBits(&state_bits, mpc::WordToBits(0, w));       // credits[0]
  auto out = c.Eval(state_bits);
  EXPECT_EQ(BitsToWord(out, 0, params.aggregate_bits), 50u);
}

TEST(EnWorkloadTest, CreditsMirrorDebts) {
  Rng rng(6);
  graph::Graph g = graph::GenerateErdosRenyi(15, 0.3, rng);
  WorkloadParams wp;
  EnInstance instance = MakeEnWorkload(g, wp, ShockParams{});
  // For every edge (i, j), i's debt to j must appear as j's credit from i —
  // verified through the initial-state packing.
  EnProgramParams params = DefaultParams(g, 1);
  auto states = MakeEnInitialStates(instance, params);
  const int w = params.format.value_bits;
  for (int j = 0; j < g.num_vertices(); j++) {
    for (int d = 0; d < g.InDegree(j); d++) {
      int i = g.InNeighbors(j)[d];
      const auto& out = g.OutNeighbors(i);
      uint64_t debt = 0;
      for (size_t s = 0; s < out.size(); s++) {
        if (out[s] == j) {
          debt = instance.debts[i][s];
        }
      }
      uint64_t credit =
          BitsToWord(states[j], static_cast<size_t>(3 + params.degree_bound + d) * w, w);
      EXPECT_EQ(credit, debt) << "edge " << i << "->" << j;
    }
  }
}

TEST(EnWorkloadTest, ShockZeroesCash) {
  Rng rng(7);
  graph::Graph g = graph::GenerateErdosRenyi(10, 0.3, rng);
  WorkloadParams wp;
  ShockParams shock;
  shock.shocked_banks = {3, 4};
  shock.survival = 0.0;
  EnInstance instance = MakeEnWorkload(g, wp, shock);
  EXPECT_EQ(instance.cash[3], 0u);
  EXPECT_EQ(instance.cash[4], 0u);
  EXPECT_GT(instance.cash[0], 0u);
}

}  // namespace
}  // namespace dstress::finance
