// Tests for the node-pair OT triple factory (src/mpc/triple_factory.h):
// share-relation correctness over randomized demand corpora, disjoint
// deterministic view slices, deadlock-freedom under the tournament order
// with mixed batch sizes, the O(roles x peers) -> O(node pairs) base-OT
// dedup, and the fidelity contract — pipelined == unpipelined runs and
// ot_batching on == off online traffic, bit for bit.
#include "src/mpc/triple_factory.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/vertex_program.h"
#include "src/graph/graph.h"
#include "src/net/transport_spec.h"
#include "src/ot/base_ot.h"

namespace dstress::mpc {
namespace {

// XOR-combines every member's share of one draw and checks c = a AND b.
void ExpectTripleRelation(const std::vector<BitTriples>& member_shares) {
  ASSERT_FALSE(member_shares.empty());
  const size_t count = member_shares[0].count;
  const size_t words = ot::PackedWords(count);
  PackedBits a(words, 0), b(words, 0), c(words, 0);
  for (const BitTriples& t : member_shares) {
    ASSERT_EQ(t.count, count);
    for (size_t w = 0; w < words; w++) {
      a[w] ^= t.a[w];
      b[w] ^= t.b[w];
      c[w] ^= t.c[w];
    }
  }
  for (size_t i = 0; i < count; i++) {
    ASSERT_EQ(ot::GetBit(c, i), ot::GetBit(a, i) && ot::GetBit(b, i)) << "triple " << i;
  }
}

void ExpectSameTriples(const BitTriples& x, const BitTriples& y) {
  ASSERT_EQ(x.count, y.count);
  for (size_t i = 0; i < x.count; i++) {
    ASSERT_EQ(ot::GetBit(x.a, i), ot::GetBit(y.a, i)) << "a bit " << i;
    ASSERT_EQ(ot::GetBit(x.b, i), ot::GetBit(y.b, i)) << "b bit " << i;
    ASSERT_EQ(ot::GetBit(x.c, i), ot::GetBit(y.c, i)) << "c bit " << i;
  }
}

TEST(TripleFactoryTest, TriplesSatisfyRelationAcrossBlockSizes) {
  // Randomized corpus: per block size, several waves of varying counts
  // (word-aligned and not) over blocks carved out of a 9-node transport.
  for (int block_size : {2, 3, 8}) {
    auto net = net::MakeTransport(net::SimTransportSpec(), 9);
    TripleFactoryOptions options;
    options.prg_seed = 0x5eed0000 + block_size;
    // Synchronous mode so the stats assertions below are exact; the
    // dispatcher path is exercised by the mixed-batch and runtime tests.
    options.pipeline = false;
    TripleFactory factory(net.get(), options);

    std::vector<int> parties;
    for (int i = 0; i < block_size; i++) {
      parties.push_back(i);
    }
    const std::vector<size_t> wave_counts = {3, 64, 130, 17};
    for (size_t wave = 0; wave < wave_counts.size(); wave++) {
      std::vector<TripleDemand> demands;
      demands.push_back({/*tag=*/7, parties, wave_counts[wave]});
      factory.Enqueue(std::move(demands));
      std::vector<BitTriples> shares;
      for (int m = 0; m < block_size; m++) {
        shares.push_back(factory.ViewFor(7, m)->Generate(wave_counts[wave]));
      }
      ExpectTripleRelation(shares);
    }
    TripleFactoryStats stats = factory.stats();
    EXPECT_EQ(stats.waves, wave_counts.size());
    EXPECT_EQ(stats.pair_sessions,
              static_cast<uint64_t>(block_size * (block_size - 1) / 2));
  }
}

TEST(TripleFactoryTest, ViewsAreDisjointDeterministicSlices) {
  // Same seed, same wave: drawing 30 + 70 must yield exactly the bits of
  // one 100-triple draw, split at 30 — views are cursors over one stream,
  // not independent generators.
  auto make_run = [](const std::vector<size_t>& draws) {
    auto net = net::MakeTransport(net::SimTransportSpec(), 4);
    TripleFactoryOptions options;
    options.prg_seed = 42;
    options.pipeline = false;
    TripleFactory factory(net.get(), options);
    factory.Enqueue({{/*tag=*/3, {0, 1, 2}, 100}});
    std::vector<std::vector<BitTriples>> per_member(3);
    for (int m = 0; m < 3; m++) {
      for (size_t d : draws) {
        per_member[m].push_back(factory.ViewFor(3, m)->Generate(d));
      }
    }
    return per_member;
  };
  auto split = make_run({30, 70});
  auto whole = make_run({100});
  for (int m = 0; m < 3; m++) {
    BitTriples rejoined = split[m][0];
    size_t words = ot::PackedWords(100);
    rejoined.a.resize(words, 0);
    rejoined.b.resize(words, 0);
    rejoined.c.resize(words, 0);
    for (size_t i = 0; i < 70; i++) {
      ot::SetBit(rejoined.a, 30 + i, ot::GetBit(split[m][1].a, i));
      ot::SetBit(rejoined.b, 30 + i, ot::GetBit(split[m][1].b, i));
      ot::SetBit(rejoined.c, 30 + i, ot::GetBit(split[m][1].c, i));
    }
    rejoined.count = 100;
    ExpectSameTriples(rejoined, whole[m][0]);
  }
  // And the slices themselves form valid triples.
  ExpectTripleRelation({split[0][0], split[1][0], split[2][0]});
  ExpectTripleRelation({split[0][1], split[1][1], split[2][1]});
}

TEST(TripleFactoryTest, MixedBatchSizesUnderTournamentOrderComplete) {
  // One wave of overlapping blocks with very different counts: every
  // co-occurring pair runs one bulk extend over its shared segments, and
  // the circle-method schedule must complete without deadlock (a hang here
  // trips the ctest timeout). Two waves reuse the pair sessions.
  auto net = net::MakeTransport(net::SimTransportSpec(), 8);
  TripleFactoryOptions options;
  options.prg_seed = 99;
  options.pipeline = true;
  TripleFactory factory(net.get(), options);

  const std::vector<TripleDemand> wave = {
      {/*tag=*/0, {0, 1, 2, 3, 4}, 129},
      {/*tag=*/1, {2, 5, 6}, 5},
      {/*tag=*/2, {1, 6, 7}, 64},
      {/*tag=*/3, {0, 7}, 1},
  };
  std::set<std::pair<int, int>> pairs;
  for (const TripleDemand& d : wave) {
    for (size_t i = 0; i < d.parties.size(); i++) {
      for (size_t j = i + 1; j < d.parties.size(); j++) {
        pairs.insert({std::min(d.parties[i], d.parties[j]),
                      std::max(d.parties[i], d.parties[j])});
      }
    }
  }
  uint64_t base_ots_before = ot::BaseOtExecutionCount();
  for (int repeat = 0; repeat < 2; repeat++) {
    factory.Enqueue(std::vector<TripleDemand>(wave));
    for (const TripleDemand& d : wave) {
      std::vector<BitTriples> shares;
      for (size_t m = 0; m < d.parties.size(); m++) {
        shares.push_back(factory.ViewFor(d.tag, static_cast<int>(m))->Generate(d.count));
      }
      ExpectTripleRelation(shares);
    }
  }
  // Base OTs paid once per co-occurring node pair (4 executions each: two
  // IKNP directions x two endpoints), not once per wave or per role.
  EXPECT_EQ(ot::BaseOtExecutionCount() - base_ots_before, 4 * pairs.size());
  EXPECT_EQ(factory.stats().pair_sessions, pairs.size());
}

// --- runtime-level fidelity and dedup --------------------------------------

core::VertexProgram MakeSumProgram(int degree_bound, int iterations) {
  core::VertexProgram program;
  program.state_bits = 16;
  program.message_bits = 8;
  program.degree_bound = degree_bound;
  program.iterations = iterations;
  program.aggregate_bits = 24;
  program.output_noise.alpha = 1e-12;
  program.output_noise.magnitude_bits = 8;
  program.output_noise.threshold_bits = 10;
  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs,
                            circuit::Word* new_state, std::vector<circuit::Word>* out_msgs) {
    circuit::Word seed(state.begin(), state.begin() + 8);
    circuit::Word acc(state.begin() + 8, state.end());
    for (const auto& msg : in_msgs) {
      acc = b.Add(acc, msg);
    }
    *new_state = seed;
    new_state->insert(new_state->end(), acc.begin(), acc.end());
    out_msgs->assign(in_msgs.size(), seed);
  };
  program.build_contribution = [](circuit::Builder& b,
                                  const circuit::Word& state) -> circuit::Word {
    return b.ZeroExtend(circuit::Word(state.begin() + 8, state.end()), 24);
  };
  return program;
}

graph::Graph Ring(int n) {
  graph::Graph g(n);
  for (int v = 0; v < n; v++) {
    g.AddEdge(v, (v + 1) % n);
  }
  return g;
}

std::vector<mpc::BitVector> RingStates(int n) {
  std::vector<mpc::BitVector> states;
  for (int v = 0; v < n; v++) {
    states.push_back(mpc::WordToBits(10 + v, 16));
  }
  return states;
}

core::RuntimeConfig OtConfig(bool ot_batching, bool ot_prefetch) {
  core::RuntimeConfig config;
  config.block_size = 3;
  config.seed = 11;
  config.use_ot_triples = true;
  config.ot_batching = ot_batching;
  config.ot_prefetch = ot_prefetch;
  return config;
}

// Per-node traffic meter that splits offline (session namespace 8, all
// OT-triple generation) from online (everything else) bytes and messages.
class OnlineTrafficMeter : public net::NetworkObserver {
 public:
  struct PerNode {
    uint64_t online_sent = 0, online_received = 0;
    uint64_t online_msgs_sent = 0, online_msgs_received = 0;
    uint64_t offline_sent = 0;
    bool operator==(const PerNode& o) const {
      return online_sent == o.online_sent && online_received == o.online_received &&
             online_msgs_sent == o.online_msgs_sent &&
             online_msgs_received == o.online_msgs_received;
    }
  };

  void OnSend(net::NodeId from, net::NodeId, net::SessionId session,
              const Bytes& payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    if ((session >> 60) == 8) {
      nodes_[from].offline_sent += payload.size();
      return;
    }
    nodes_[from].online_sent += payload.size();
    nodes_[from].online_msgs_sent += 1;
  }
  void OnRecv(net::NodeId to, net::NodeId, net::SessionId session,
              const Bytes& payload) override {
    std::lock_guard<std::mutex> lock(mu_);
    if ((session >> 60) == 8) {
      return;
    }
    nodes_[to].online_received += payload.size();
    nodes_[to].online_msgs_received += 1;
  }

  std::map<net::NodeId, PerNode> nodes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return nodes_;
  }

 private:
  mutable std::mutex mu_;
  std::map<net::NodeId, PerNode> nodes_;
};

TEST(TripleFactoryTest, PipelinedRunMatchesUnpipelinedRunExactly) {
  // The offline/online pipeline must be a pure latency optimization:
  // released figure, full per-node TrafficStats and metered triple demand
  // identical whether waves are generated ahead on the dispatcher or
  // synchronously at enqueue.
  constexpr int kN = 5;
  graph::Graph g = Ring(kN);
  core::VertexProgram program = MakeSumProgram(1, 2);

  core::Runtime pipelined(OtConfig(/*ot_batching=*/true, /*ot_prefetch=*/true), g, program);
  core::Runtime unpipelined(OtConfig(/*ot_batching=*/true, /*ot_prefetch=*/false), g, program);
  core::RunMetrics mp, mu;
  int64_t released_p = pipelined.Run(RingStates(kN), &mp);
  int64_t released_u = unpipelined.Run(RingStates(kN), &mu);

  EXPECT_EQ(released_p, released_u);
  EXPECT_EQ(mp.triples_consumed, mu.triples_consumed);
  EXPECT_EQ(mp.base_ot_executions, mu.base_ot_executions);
  for (int node = 0; node < kN; node++) {
    net::TrafficStats sp = pipelined.network().NodeStats(node);
    net::TrafficStats su = unpipelined.network().NodeStats(node);
    EXPECT_EQ(sp.bytes_sent, su.bytes_sent) << "node " << node;
    EXPECT_EQ(sp.bytes_received, su.bytes_received) << "node " << node;
    EXPECT_EQ(sp.messages_sent, su.messages_sent) << "node " << node;
    EXPECT_EQ(sp.messages_received, su.messages_received) << "node " << node;
  }
}

TEST(TripleFactoryTest, FactoryMatchesPerRoleBaselineAndDedupsBaseOts) {
  // ot_batching on vs off over the same workload: identical released
  // figure, bit-identical per-node ONLINE traffic, and the factory's
  // base-OT executions drop from O(roles x peers) to O(node pairs) —
  // asserted structurally against the trusted setup's blocks.
  constexpr int kN = 5;
  graph::Graph g = Ring(kN);
  core::VertexProgram program = MakeSumProgram(1, 2);

  core::Runtime baseline(OtConfig(/*ot_batching=*/false, /*ot_prefetch=*/true), g, program);
  core::Runtime factory(OtConfig(/*ot_batching=*/true, /*ot_prefetch=*/true), g, program);
  OnlineTrafficMeter baseline_meter, factory_meter;
  baseline.AttachObserver(&baseline_meter);
  factory.AttachObserver(&factory_meter);

  core::RunMetrics mb, mf;
  int64_t released_b = baseline.Run(RingStates(kN), &mb);
  int64_t released_f = factory.Run(RingStates(kN), &mf);
  EXPECT_EQ(released_b, released_f);
  EXPECT_EQ(mb.triples_consumed, mf.triples_consumed);

  // Online-phase traffic identical per node, in bytes and message counts.
  auto online_b = baseline_meter.nodes();
  auto online_f = factory_meter.nodes();
  ASSERT_EQ(online_b.size(), online_f.size());
  uint64_t offline_bytes_f = 0;
  for (const auto& [node, stats] : online_f) {
    ASSERT_TRUE(online_b.count(node)) << "node " << node;
    EXPECT_TRUE(stats == online_b[node]) << "node " << node;
    offline_bytes_f += stats.offline_sent;
  }
  EXPECT_GT(offline_bytes_f, 0u);  // the OT protocol really ran

  // Base-OT dedup. Baseline: every role group (one per vertex, plus the
  // flat aggregation block) pays C(k+1, 2) pairwise setups of 4 executions
  // each. Factory: 4 executions per distinct node pair co-occurring in any
  // block.
  const int k1 = 3;
  uint64_t groups = static_cast<uint64_t>(kN) + 1;
  EXPECT_EQ(mb.base_ot_executions, 4 * (k1 * (k1 - 1) / 2) * groups);
  std::set<std::pair<int, int>> node_pairs;
  auto add_block = [&](const std::vector<int>& block) {
    for (size_t i = 0; i < block.size(); i++) {
      for (size_t j = i + 1; j < block.size(); j++) {
        node_pairs.insert(
            {std::min(block[i], block[j]), std::max(block[i], block[j])});
      }
    }
  };
  for (int v = 0; v < kN; v++) {
    add_block(factory.setup().blocks[v]);
  }
  add_block(factory.setup().aggregation_block);
  EXPECT_EQ(mf.base_ot_executions, 4 * node_pairs.size());
  EXPECT_LT(mf.base_ot_executions, mb.base_ot_executions);
  // The factory overlaps offline generation with the online phase; its
  // metrics must surface that work.
  EXPECT_GT(mf.offline_seconds, 0.0);
}

}  // namespace
}  // namespace dstress::mpc
