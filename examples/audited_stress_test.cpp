// Compartmentalized auditing of a DStress run (paper §3.2 assumption 1 and
// §4.6).
//
// The paper's honest-but-curious assumption is justified by the existing
// bank-audit regime: each bank's auditor can verify that *their* bank ran
// the protocol faithfully without seeing anyone else's data. This example
// shows what those auditors would check: every node keeps a hash-chained
// transcript of its protocol messages; transcripts are verified for chain
// integrity and pairwise consistency after the run. A deliberately forged
// receive entry is then injected to show how a deviation is pinpointed.
//
// Build & run:  ./build/examples/audited_stress_test

#include <cstdio>

#include "src/audit/verify.h"
#include "src/core/runtime.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"

int main() {
  using namespace dstress;

  // A small Eisenberg–Noe stress test, exactly like quickstart.
  Rng rng(99);
  graph::CorePeripheryParams topology;
  topology.num_vertices = 12;
  topology.core_size = 4;
  graph::Graph network = graph::GenerateCorePeriphery(topology, rng);

  finance::WorkloadParams sheets;
  sheets.core_size = topology.core_size;
  finance::ShockParams shock;
  shock.shocked_banks = {0, 1};
  finance::EnInstance instance = finance::MakeEnWorkload(network, sheets, shock);

  finance::EnProgramParams params;
  params.degree_bound = network.MaxDegree();
  params.iterations = 4;
  params.noise_alpha = 0.5;
  core::VertexProgram program = finance::MakeEnProgram(params);

  core::RuntimeConfig config;
  config.block_size = 3;
  config.seed = 7;
  core::Runtime runtime(config, network, program);

  // Every bank records its transcript while the protocol runs.
  audit::TranscriptRecorder recorder(network.num_vertices());
  runtime.AttachObserver(&recorder);

  auto states = finance::MakeEnInitialStates(instance, params);
  int64_t tds = runtime.Run(states, nullptr);
  std::printf("released (noised) total dollar shortfall: %lld\n", static_cast<long long>(tds));

  // The audit: chains intact, every sent message received unmodified.
  audit::AuditReport clean = audit::VerifyTranscripts(recorder);
  std::printf("post-run audit:  %s\n", clean.ToString().c_str());

  // A bank now tries to claim it received a message its neighbor never
  // sent (e.g. to dispute the outcome).
  recorder.mutable_log(2).Append(audit::Direction::kReceived, 5, /*session=*/1,
                                 Bytes{0xba, 0xad});
  audit::AuditReport caught = audit::VerifyTranscripts(recorder);
  std::printf("forged transcript audit: %s\n", caught.ToString().c_str());
  for (const auto& d : caught.discrepancies) {
    std::printf("  -> bank %d's message #%zu to bank %d (session %llu): %s\n", d.sender,
                d.message_index, d.receiver, static_cast<unsigned long long>(d.session),
                d.description.c_str());
  }
  return caught.ok() ? 1 : 0;  // the forgery must be caught
}
