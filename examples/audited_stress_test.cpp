// Compartmentalized auditing of a DStress run (paper §3.2 assumption 1 and
// §4.6).
//
// The paper's honest-but-curious assumption is justified by the existing
// bank-audit regime: each bank's auditor can verify that *their* bank ran
// the protocol faithfully without seeing anyone else's data. This example
// shows what those auditors would check: every node keeps a hash-chained
// transcript of its protocol messages; transcripts are verified for chain
// integrity and pairwise consistency after the run. A deliberately forged
// receive entry is then injected to show how a deviation is pinpointed.
//
// Build & run:  ./build/examples/audited_stress_test

#include <cstdio>

#include "src/audit/verify.h"
#include "src/engine/engine.h"

int main() {
  using namespace dstress;

  // A small Eisenberg–Noe stress test, exactly like quickstart.
  engine::RunSpec spec;
  spec.topology = engine::CorePeripheryTopology(/*num_vertices=*/12, /*core_size=*/4);
  spec.model = engine::ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {0, 1};
  spec.iterations = 4;
  spec.block_size = 3;
  spec.noise_alpha = 0.5;
  spec.seed = 7;
  engine::Engine engine(spec);

  // Every bank records its transcript while the protocol runs.
  audit::TranscriptRecorder recorder(engine.graph().num_vertices());
  engine.AttachObserver(&recorder);

  engine::RunReport report = engine.Run();
  std::printf("released (noised) total dollar shortfall: %lld\n",
              static_cast<long long>(report.released));

  // The audit: chains intact, every sent message received unmodified.
  audit::AuditReport clean = audit::VerifyTranscripts(recorder);
  std::printf("post-run audit:  %s\n", clean.ToString().c_str());

  // A bank now tries to claim it received a message its neighbor never
  // sent (e.g. to dispute the outcome).
  recorder.mutable_log(2).Append(audit::Direction::kReceived, 5, /*session=*/1,
                                 Bytes{0xba, 0xad});
  audit::AuditReport caught = audit::VerifyTranscripts(recorder);
  std::printf("forged transcript audit: %s\n", caught.ToString().c_str());
  for (const auto& d : caught.discrepancies) {
    std::printf("  -> bank %d's message #%zu to bank %d (session %llu): %s\n", d.sender,
                d.message_index, d.receiver, static_cast<unsigned long long>(d.session),
                d.description.c_str());
  }
  return caught.ok() ? 1 : 0;  // the forgery must be caught
}
