// dstress_run: execute a stress-test scenario file under DStress.
//
//   ./build/examples/dstress_run <scenario-file>
//   ./build/examples/dstress_run --demo               (built-in demo scenario)
//   ./build/examples/dstress_run --check <scenario>   (validate only, don't run)
//   ./build/examples/dstress_run --resume <scenario>  (restart from the scenario's
//                                                      ha checkpoint_path; docs/ha.md)
//
// Scenario format: see docs/scenario-format.md (runnable examples under
// examples/scenarios/). Example:
//
//   network core_periphery 30 6
//   model egj
//   mode secure
//   transport tcp      # one process per bank over real sockets (default: sim)
//   block_size 4
//   epsilon 0.23
//   leverage 0.1
//   shock 0 1
//   seed 11
//
// --check parses and validates without executing — handy for linting a
// multi-machine scenario on a laptop before shipping it to the deployment,
// and used by CI to keep every documented scenario snippet loadable.

#include <cstdio>
#include <cstring>

#include "src/cli/scenario.h"
#include "src/engine/engine.h"

namespace {

constexpr char kDemoScenario[] = R"(# built-in demo: core shock on a 30-bank network
network core_periphery 30 6
model en
block_size 4
epsilon 0.23
leverage 0.1
shock 0 1
seed 11
)";

// Summarizes a validated spec without running it.
void PrintCheckSummary(const dstress::engine::RunSpec& spec) {
  using dstress::engine::ContagionModel;
  std::printf("scenario OK: %d banks, model %s, mode %s, transport %s\n",
              spec.topology.num_vertices,
              spec.model == ContagionModel::kEisenbergNoe ? "en" : "egj",
              dstress::engine::ExecutionModeName(spec.mode), spec.transport.backend.c_str());
  if (spec.ensemble.has_value()) {
    std::printf("ensemble: %d scenario(s)%s\n", spec.ensemble->Width(),
                spec.ensemble->epsilon_budget > 0 ? " (epsilon budget capped)" : "");
  }
  if (spec.transport.external_nodes) {
    std::printf("multi-machine deployment: rendezvous %s:%d, %d external bank process(es)\n",
                spec.transport.host.c_str(), spec.transport.port, spec.topology.num_vertices);
    for (size_t bank = 0; bank < spec.transport.node_endpoints.size(); bank++) {
      const dstress::net::PeerEndpoint& ep = spec.transport.node_endpoints[bank];
      if (!ep.host.empty()) {
        std::printf("  bank %zu @ %s%s\n", bank, ep.host.c_str(),
                    ep.port != 0 ? (":" + std::to_string(ep.port)).c_str() : "");
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dstress;

  bool check_only = argc == 3 && std::strcmp(argv[1], "--check") == 0;
  bool resume = argc == 3 && std::strcmp(argv[1], "--resume") == 0;
  if (argc != 2 && !check_only && !resume) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> | --demo | --check <scenario-file> |"
                 " --resume <scenario-file>\n",
                 argv[0]);
    return 2;
  }

  std::string error;
  std::optional<engine::RunSpec> spec;
  if (check_only || resume) {
    spec = cli::LoadScenarioFile(argv[2], &error);
  } else if (std::strcmp(argv[1], "--demo") == 0) {
    spec = cli::ParseScenario(kDemoScenario, &error);
  } else {
    spec = cli::LoadScenarioFile(argv[1], &error);
  }
  if (!spec.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (check_only) {
    PrintCheckSummary(*spec);
    return 0;
  }
  if (resume) {
    if (spec->ha_checkpoint_path.empty()) {
      std::fprintf(stderr, "error: --resume needs 'ha checkpoint_path <file>' in the scenario\n");
      return 1;
    }
    spec->ha_resume = true;
  }

  engine::Engine engine(*spec);
  if (spec->ensemble.has_value()) {
    std::printf("running %d-scenario %s ensemble under DStress (%s mode)...\n",
                spec->ensemble->Width(),
                spec->model == engine::ContagionModel::kEisenbergNoe ? "Eisenberg-Noe"
                                                                     : "Elliott-Golub-Jackson",
                engine::ExecutionModeName(spec->mode));
    ensemble::EnsembleReport report = engine.RunEnsemble();
    std::printf("%s", ensemble::FormatEnsembleReport(*spec, report).c_str());
    return 0;
  }
  std::printf("running %s scenario under DStress (%s mode)...\n",
              spec->model == engine::ContagionModel::kEisenbergNoe ? "Eisenberg-Noe"
                                                                   : "Elliott-Golub-Jackson",
              engine::ExecutionModeName(spec->mode));
  engine::RunReport report = engine.Run();
  std::printf("%s", engine::FormatReport(*spec, report).c_str());
  return 0;
}
