// dstress_run: execute a stress-test scenario file under DStress.
//
//   ./build/examples/dstress_run <scenario-file>
//   ./build/examples/dstress_run --demo      (built-in demo scenario)
//
// Scenario format: see src/cli/scenario.h. Example:
//
//   network core_periphery 30 6
//   model egj
//   mode secure
//   transport tcp      # one process per bank over real sockets (default: sim)
//   block_size 4
//   epsilon 0.23
//   leverage 0.1
//   shock 0 1
//   seed 11

#include <cstdio>
#include <cstring>

#include "src/cli/scenario.h"
#include "src/engine/engine.h"

namespace {

constexpr char kDemoScenario[] = R"(# built-in demo: core shock on a 30-bank network
network core_periphery 30 6
model en
block_size 4
epsilon 0.23
leverage 0.1
shock 0 1
seed 11
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace dstress;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <scenario-file> | --demo\n", argv[0]);
    return 2;
  }

  std::string error;
  std::optional<engine::RunSpec> spec =
      std::strcmp(argv[1], "--demo") == 0 ? cli::ParseScenario(kDemoScenario, &error)
                                          : cli::LoadScenarioFile(argv[1], &error);
  if (!spec.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  engine::Engine engine(*spec);
  std::printf("running %s scenario under DStress (%s mode)...\n",
              spec->model == engine::ContagionModel::kEisenbergNoe ? "Eisenberg-Noe"
                                                                   : "Elliott-Golub-Jackson",
              engine::ExecutionModeName(spec->mode));
  engine::RunReport report = engine.Run();
  std::printf("%s", engine::FormatReport(*spec, report).c_str());
  return 0;
}
