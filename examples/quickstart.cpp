// Quickstart: run a privacy-preserving Eisenberg–Noe stress test on a small
// synthetic banking network.
//
// Ten banks each know only their own balance sheet and their own credit
// relationships. DStress computes the Total Dollar Shortfall after a shock
// wipes out two banks' reserves — without any bank (or any coalition of up
// to k of them) learning another bank's books or the shape of the network,
// and with differential privacy on the released figure.
//
// The whole run is one declarative RunSpec:
//
//   engine::RunSpec spec;
//   spec.topology = engine::CorePeripheryTopology(10, 4);
//   spec.model = engine::ContagionModel::kEisenbergNoe;
//   spec.shock.shocked_banks = {4, 5};
//   spec.iterations = 4;
//   spec.block_size = 4;
//   spec.seed = 7;
//   engine::RunReport report = engine::Engine(spec).Run();
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/engine/engine.h"

int main() {
  using namespace dstress;

  // 1. The stress test, declaratively: a 10-bank core-periphery network
  //    (in a real deployment no party would hold the topology; each bank
  //    knows only its own adjacency), the Eisenberg–Noe contagion model of
  //    paper Figure 2a, and a shock that wipes out banks 4 and 5. Output
  //    noise is calibrated as in §4.5 from the defaults eps = 0.23 and
  //    leverage bound r = 0.1.
  engine::RunSpec spec;
  spec.topology = engine::CorePeripheryTopology(/*num_vertices=*/10, /*core_size=*/4);
  spec.model = engine::ContagionModel::kEisenbergNoe;
  spec.shock.shocked_banks = {4, 5};
  spec.iterations = 4;  // ~log2(N), Appendix C
  spec.block_size = 4;  // state is secret-shared across blocks of k+1 = 4
  spec.seed = 7;

  // 2. Execute under DStress: every bank runs on its own thread, updates
  //    run in GMW, messages cross edges through the encrypted transfer
  //    protocol, and the aggregate is noised inside MPC.
  engine::Engine engine(spec);
  std::printf("network: %d banks, %d directed exposures, max degree %d\n",
              engine.graph().num_vertices(), engine.graph().num_edges(),
              engine.graph().MaxDegree());
  engine::RunReport report = engine.Run();

  // 3. Compare with the cleartext reference (which a regulator could never
  //    compute in practice — it needs all the books).
  std::printf("\nnoised TDS (released): %lld money units\n",
              static_cast<long long>(report.released));
  std::printf("exact TDS (reference): %llu money units\n",
              static_cast<unsigned long long>(report.reference));
  std::printf("run: %s\n", report.metrics.ToString().c_str());
  return 0;
}
