// Quickstart: run a privacy-preserving Eisenberg–Noe stress test on a small
// synthetic banking network.
//
// Ten banks each know only their own balance sheet and their own credit
// relationships. DStress computes the Total Dollar Shortfall after a shock
// wipes out two banks' reserves — without any bank (or any coalition of up
// to k of them) learning another bank's books or the shape of the network,
// and with differential privacy on the released figure.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/runtime.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/utility.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"

int main() {
  using namespace dstress;

  // 1. The financial network: a 10-bank core-periphery graph. In a real
  //    deployment no party would hold this object; each bank would know
  //    only its own adjacency.
  Rng rng(42);
  graph::CorePeripheryParams topology;
  topology.num_vertices = 10;
  topology.core_size = 4;
  graph::Graph network = graph::GenerateCorePeriphery(topology, rng);
  std::printf("network: %d banks, %d directed exposures, max degree %d\n",
              network.num_vertices(), network.num_edges(), network.MaxDegree());

  // 2. Balance sheets plus a shock: banks 4 and 5 lose their reserves.
  finance::WorkloadParams balance_sheets;
  balance_sheets.core_size = topology.core_size;
  finance::ShockParams shock;
  shock.shocked_banks = {4, 5};
  finance::EnInstance instance = finance::MakeEnWorkload(network, balance_sheets, shock);

  // 3. The vertex program (Figure 2a of the paper) with dollar-DP output
  //    noise calibrated as in §4.5: sensitivity 1/r at leverage bound
  //    r = 0.1, one money unit = $1B granularity.
  finance::EnProgramParams program_params;
  program_params.degree_bound = network.MaxDegree();
  program_params.iterations = 4;  // ~log2(N), Appendix C
  program_params.noise_alpha = finance::NoiseAlphaForRelease(
      /*sensitivity_dollars=*/finance::EnSensitivity(0.1), /*epsilon=*/0.23,
      /*unit_dollars=*/1.0);
  core::VertexProgram program = finance::MakeEnProgram(program_params);
  std::printf("update circuit: %s\n", "built");

  // 4. Execute under DStress: every bank runs on its own thread, state is
  //    secret-shared across blocks of k+1 = 4 banks, updates run in GMW,
  //    messages cross edges through the encrypted transfer protocol.
  core::RuntimeConfig config;
  config.block_size = 4;
  config.seed = 7;
  core::Runtime runtime(config, network, program);
  std::printf("update circuit: %s\n", runtime.update_circuit().stats().ToString().c_str());

  core::RunMetrics metrics;
  int64_t noised_tds =
      runtime.Run(finance::MakeEnInitialStates(instance, program_params), &metrics);

  // 5. Compare with the cleartext reference (which a regulator could never
  //    compute in practice — it needs all the books).
  uint64_t exact_tds = finance::EnSolveFixed(instance, program_params);
  std::printf("\nnoised TDS (released): %lld money units\n",
              static_cast<long long>(noised_tds));
  std::printf("exact TDS (reference): %llu money units\n",
              static_cast<unsigned long long>(exact_tds));
  std::printf("run: %s\n", metrics.ToString().c_str());
  return 0;
}
