// DStress beyond finance: privately measuring failure propagation in a
// federated infrastructure graph (the "cloud reliability" use case of
// paper §3.1, citing Zhai et al.'s independence-as-a-service).
//
// Setting: operators of interdependent services each know only their own
// dependencies (edges). An auditor wants the *number of services that a
// given set of initially-failed services can take down within h hops* —
// without any operator revealing its dependency list and with differential
// privacy on the released count.
//
// Vertex program: state = 1 bit of "failed"; a failed vertex broadcasts 1,
// a healthy one broadcasts ⊥ = 0; a vertex fails when any in-neighbor has
// failed; aggregate = noised count of failed vertices after h iterations.
// The program rides in a RunSpec as a custom contagion model.
//
// Build & run:  ./build/examples/private_reachability

#include <cstdio>
#include <queue>

#include "src/engine/engine.h"
#include "src/graph/generators.h"

int main() {
  using namespace dstress;

  Rng rng(7);
  graph::Graph deps = graph::GenerateScaleFree(/*num_vertices=*/32, /*links_per_vertex=*/2, rng);
  const std::vector<int> initially_failed = {0, 5};
  constexpr int kHops = 4;

  core::VertexProgram program;
  program.state_bits = 8;  // bit 0 = failed; spare bits keep packing simple
  program.message_bits = 8;
  program.degree_bound = deps.MaxDegree();
  program.iterations = kHops;
  program.aggregate_bits = 16;
  program.output_noise.alpha = 0.6;  // modest DP noise on the failure count
  program.output_noise.magnitude_bits = 8;
  program.output_noise.threshold_bits = 12;

  program.build_update = [](circuit::Builder& b, const circuit::Word& state,
                            const std::vector<circuit::Word>& in_msgs,
                            circuit::Word* new_state, std::vector<circuit::Word>* out_msgs) {
    circuit::Wire failed = state[0];
    for (const auto& msg : in_msgs) {
      failed = b.Or(failed, msg[0]);  // any failed dependency takes us down
    }
    *new_state = circuit::Word(state.size(), b.Zero());
    (*new_state)[0] = failed;
    circuit::Word broadcast(8, b.Zero());
    broadcast[0] = failed;
    out_msgs->assign(in_msgs.size(), broadcast);
  };
  program.build_contribution = [](circuit::Builder& b,
                                  const circuit::Word& state) -> circuit::Word {
    circuit::Word one_if_failed(16, b.Zero());
    one_if_failed[0] = state[0];
    return one_if_failed;
  };

  std::vector<mpc::BitVector> states(deps.num_vertices(), mpc::BitVector(8, 0));
  for (int v : initially_failed) {
    states[v][0] = 1;
  }

  engine::RunSpec spec;
  spec.graph = deps;
  spec.model = engine::ContagionModel::kCustom;
  spec.custom_program = program;
  spec.custom_states = states;
  spec.block_size = 4;
  spec.seed = 77;
  engine::RunReport report = engine::Engine(spec).Run();

  // Cleartext reference: BFS truncated at kHops.
  std::vector<int> dist(deps.num_vertices(), -1);
  std::queue<int> frontier;
  for (int v : initially_failed) {
    dist[v] = 0;
    frontier.push(v);
  }
  int reachable = 0;
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop();
    reachable++;
    if (dist[v] == kHops) {
      continue;
    }
    for (int u : deps.OutNeighbors(v)) {
      if (dist[u] < 0) {
        dist[u] = dist[v] + 1;
        frontier.push(u);
      }
    }
  }

  std::printf("federated dependency graph: %d services, %d edges, degree bound %d\n",
              deps.num_vertices(), deps.num_edges(), deps.MaxDegree());
  std::printf("failure sources: %zu services; horizon: %d hops\n", initially_failed.size(),
              kHops);
  std::printf("released (noised) blast-radius count: %lld\n",
              static_cast<long long>(report.released));
  std::printf("cleartext reference:                  %d\n", reachable);
  std::printf("run: %s\n", report.metrics.ToString().c_str());
  return 0;
}
