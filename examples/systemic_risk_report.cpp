// A regulator's yearly workflow: sweep hypothetical shock scenarios over a
// 50-bank core-periphery network with both contagion models, track the
// privacy budget, and execute the most severe scenario under full DStress
// protection.
//
// This mirrors the paper's deployment story (§4.5): a privacy budget of
// ln 2 replenished yearly supports about three differentially private
// stress tests per year at ±$200B accuracy.
//
// Build & run:  ./build/examples/systemic_risk_report

#include <cmath>
#include <cstdio>

#include "src/core/runtime.h"
#include "src/dp/edge_privacy.h"
#include "src/finance/utility.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"

int main() {
  using namespace dstress;

  // The synthetic banking system of Appendix C: dense 10-bank core.
  Rng rng(2026);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 50;
  topo.core_size = 10;
  graph::Graph network = graph::GenerateCorePeriphery(topo, rng);

  finance::WorkloadParams balance_sheets;
  balance_sheets.core_size = topo.core_size;
  balance_sheets.cross_holding = 0.3;
  balance_sheets.threshold_ratio = 0.8;
  balance_sheets.penalty_ratio = 0.4;

  // Privacy-budget plan for the year.
  const double yearly_budget = std::log(2.0);
  double egj_sensitivity = finance::EgjSensitivity(/*leverage_bound_r=*/0.1);
  double eps_query = finance::EpsilonForAccuracy(egj_sensitivity, /*granularity=*/1.0,
                                                 /*error_bound=*/200.0, /*confidence=*/0.95);
  dp::PrivacyAccountant accountant(yearly_budget);
  std::printf("privacy plan: budget ln2 = %.3f, eps/query = %.3f -> %.0f queries this year\n\n",
              yearly_budget, eps_query, std::floor(yearly_budget / eps_query));

  // Scenario sweep with the cleartext models (what the regulator would do
  // on its own data before committing budget to a private system-wide run).
  struct Scenario {
    const char* name;
    std::vector<int> shocked;
  };
  const Scenario scenarios[] = {
      {"housing dip (2 peripheral)", {44, 45}},
      {"regional crisis (5 peripheral)", {40, 41, 42, 43, 44}},
      {"money-center failure (2 core)", {0, 1}},
  };
  std::printf("%-34s %12s %12s\n", "scenario", "EN TDS", "EGJ TDS");
  const Scenario* worst = nullptr;
  uint64_t worst_tds = 0;
  for (const Scenario& s : scenarios) {
    finance::ShockParams shock;
    shock.shocked_banks = s.shocked;
    finance::EnProgramParams en;
    en.degree_bound = network.MaxDegree();
    en.iterations = 6;
    finance::EgjProgramParams egj;
    egj.degree_bound = network.MaxDegree();
    egj.iterations = 6;
    uint64_t en_tds =
        finance::EnSolveFixed(finance::MakeEnWorkload(network, balance_sheets, shock), en);
    uint64_t egj_tds =
        finance::EgjSolveFixed(finance::MakeEgjWorkload(network, balance_sheets, shock), egj);
    std::printf("%-34s %12llu %12llu\n", s.name, static_cast<unsigned long long>(en_tds),
                static_cast<unsigned long long>(egj_tds));
    if (egj_tds >= worst_tds) {
      worst_tds = egj_tds;
      worst = &s;
    }
  }

  // Run the worst scenario under DStress: distributed, secret-shared,
  // differentially private.
  std::printf("\nexecuting '%s' under DStress (charging eps = %.3f)...\n", worst->name,
              eps_query);
  if (!accountant.Charge(eps_query)) {
    std::printf("budget exhausted!\n");
    return 1;
  }
  finance::ShockParams shock;
  shock.shocked_banks = worst->shocked;
  finance::EgjProgramParams egj;
  egj.degree_bound = network.MaxDegree();
  egj.iterations = 6;
  egj.noise_alpha =
      finance::NoiseAlphaForRelease(egj_sensitivity, eps_query, /*unit_dollars=*/1.0);
  finance::EgjInstance instance = finance::MakeEgjWorkload(network, balance_sheets, shock);

  core::RuntimeConfig config;
  config.block_size = 4;  // collusion bound k = 3 for the demo
  config.aggregation_fanout = 25;  // two-level aggregation tree
  config.seed = 17;
  core::Runtime runtime(config, network, finance::MakeEgjProgram(egj));
  core::RunMetrics metrics;
  int64_t released =
      runtime.Run(finance::MakeEgjInitialStates(instance, egj), &metrics);

  std::printf("released (noised) TDS: %lld   [cleartext reference: %llu]\n",
              static_cast<long long>(released), static_cast<unsigned long long>(worst_tds));
  std::printf("cost: %s\n", metrics.ToString().c_str());
  std::printf("budget remaining this year: %.3f\n", accountant.remaining());
  return 0;
}
