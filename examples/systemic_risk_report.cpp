// A regulator's yearly workflow: sweep hypothetical shock scenarios over a
// 50-bank core-periphery network with both contagion models, track the
// privacy budget, and execute the most severe scenario under full DStress
// protection.
//
// This mirrors the paper's deployment story (§4.5): a privacy budget of
// ln 2 replenished yearly supports about three differentially private
// stress tests per year at ±$200B accuracy.
//
// The sweep runs through the same engine as the protected run — only the
// ExecutionMode differs: kCleartextFast for the what-if grid (no crypto, no
// privacy charge, fast), kSecure for the one scenario that counts.
//
// Build & run:  ./build/examples/systemic_risk_report

#include <cmath>
#include <cstdio>
#include <iterator>

#include "src/dp/edge_privacy.h"
#include "src/engine/engine.h"
#include "src/finance/utility.h"

int main() {
  using namespace dstress;

  // The synthetic banking system of Appendix C: dense 10-bank core. The
  // network is materialized once so the sweep and the protected run (which
  // uses a different protocol seed) stress the same system.
  engine::RunSpec base;
  base.graph = engine::BuildTopologyGraph(
      engine::CorePeripheryTopology(/*num_vertices=*/50, /*core_size=*/10), /*seed=*/2026);
  base.seed = 2026;
  base.iterations = 6;
  {
    finance::WorkloadParams balance_sheets;
    balance_sheets.core_size = 10;
    balance_sheets.cross_holding = 0.3;
    balance_sheets.threshold_ratio = 0.8;
    balance_sheets.penalty_ratio = 0.4;
    base.workload = balance_sheets;
  }

  // Privacy-budget plan for the year.
  const double yearly_budget = std::log(2.0);
  double egj_sensitivity = finance::EgjSensitivity(/*leverage_bound_r=*/0.1);
  double eps_query = finance::EpsilonForAccuracy(egj_sensitivity, /*granularity=*/1.0,
                                                 /*error_bound=*/200.0, /*confidence=*/0.95);
  dp::PrivacyAccountant accountant(yearly_budget);
  std::printf("privacy plan: budget ln2 = %.3f, eps/query = %.3f -> %.0f queries this year\n\n",
              yearly_budget, eps_query, std::floor(yearly_budget / eps_query));

  // Scenario sweep in cleartext mode (what the regulator would do on its
  // own candidate scenarios before committing budget to a private
  // system-wide run): full engine, no crypto, no budget charge.
  struct Scenario {
    const char* name;
    std::vector<int> shocked;
  };
  const Scenario scenarios[] = {
      {"housing dip (2 peripheral)", {44, 45}},
      {"regional crisis (5 peripheral)", {40, 41, 42, 43, 44}},
      {"money-center failure (2 core)", {0, 1}},
  };
  std::printf("%-34s %12s %12s\n", "scenario", "EN TDS", "EGJ TDS");
  const Scenario* worst = nullptr;
  uint64_t worst_tds = 0;
  double sweep_seconds = 0;
  for (const Scenario& s : scenarios) {
    uint64_t tds[2];
    int which = 0;
    for (auto model : {engine::ContagionModel::kEisenbergNoe,
                       engine::ContagionModel::kElliottGolubJackson}) {
      engine::RunSpec spec = base;
      spec.mode = engine::ExecutionMode::kCleartextFast;
      spec.model = model;
      spec.shock.shocked_banks = s.shocked;
      engine::RunReport report = engine::Engine(spec).Run();
      // The sweep releases nothing: the unnoised reference guides scenario
      // selection, and the full cleartext run (same circuits, metered
      // transport) is what a sweep at real scale would execute.
      tds[which++] = report.reference;
      sweep_seconds += report.metrics.total_seconds;
    }
    std::printf("%-34s %12llu %12llu\n", s.name, static_cast<unsigned long long>(tds[0]),
                static_cast<unsigned long long>(tds[1]));
    if (tds[1] >= worst_tds) {
      worst_tds = tds[1];
      worst = &s;
    }
  }
  std::printf("(%zu cleartext engine runs in %.2f s — no crypto, no budget spent)\n",
              2 * std::size(scenarios), sweep_seconds);

  // Run the worst scenario under DStress: distributed, secret-shared,
  // differentially private.
  std::printf("\nexecuting '%s' under DStress (charging eps = %.3f)...\n", worst->name,
              eps_query);
  if (!accountant.Charge(eps_query)) {
    std::printf("budget exhausted!\n");
    return 1;
  }
  engine::RunSpec protected_spec = base;
  protected_spec.mode = engine::ExecutionMode::kSecure;
  protected_spec.model = engine::ContagionModel::kElliottGolubJackson;
  protected_spec.shock.shocked_banks = worst->shocked;
  protected_spec.epsilon = eps_query;
  protected_spec.leverage = 0.1;
  protected_spec.block_size = 4;       // collusion bound k = 3 for the demo
  protected_spec.aggregation_fanout = 25;  // two-level aggregation tree
  protected_spec.seed = 17;
  engine::RunReport report = engine::Engine(protected_spec).Run();

  std::printf("released (noised) TDS: %lld   [cleartext reference: %llu]\n",
              static_cast<long long>(report.released),
              static_cast<unsigned long long>(worst_tds));
  std::printf("cost: %s\n", report.metrics.ToString().c_str());
  std::printf("budget remaining this year: %.3f\n", accountant.remaining());
  return 0;
}
