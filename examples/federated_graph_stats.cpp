// Federated graph statistics with the programs library: three analyses a
// consortium can release about a confidential communication graph — the
// kind of multi-domain analysis §3.1 motivates with criminal-intelligence
// and computational-social-science workloads.
//
//  1. Private census (programs::private_sum): noised total activity volume,
//     no propagation at all.
//  2. Influence diffusion (programs::influence): noised total influence
//     mass remaining after a truncated random walk from the seed accounts.
//  3. Component count (programs::components): noised number of disconnected
//     clusters, via min-label propagation.
//
// Every statistic is computed without any participant learning another's
// data or the graph topology, and released with differential privacy. Each
// analysis is an engine::RunSpec carrying a custom vertex program.
//
// Build & run:  ./build/examples/federated_graph_stats

#include <cstdio>

#include "src/engine/engine.h"
#include "src/programs/components.h"
#include "src/programs/influence.h"
#include "src/programs/private_sum.h"

namespace {

dstress::dp::NoiseCircuitSpec ModestNoise() {
  dstress::dp::NoiseCircuitSpec spec;
  spec.alpha = 0.5;  // eps = ln 2 at sensitivity 1
  spec.magnitude_bits = 8;
  spec.threshold_bits = 12;
  return spec;
}

}  // namespace

int main() {
  using namespace dstress;

  // A two-cluster communication graph: organizations 0..19 and 20..31,
  // symmetric links, no cross-cluster edges.
  graph::Graph g(32);
  auto link = [&g](int u, int v) {
    g.AddEdge(u, v);
    g.AddEdge(v, u);
  };
  for (int v = 1; v < 20; v++) {
    link(v, v < 4 ? 0 : v % 4);  // hub-ish first cluster around accounts 0..3
  }
  for (int v = 21; v < 32; v++) {
    link(v, 20 + (v - 20) / 3);
  }
  std::printf("graph: %d accounts, %d directed links, max degree %d\n", g.num_vertices(),
              g.num_edges(), g.MaxDegree());

  // Shared run shape: the confidential prebuilt network, blocks of k+1 = 4,
  // a caller-supplied vertex program.
  engine::RunSpec base;
  base.graph = g;
  base.model = engine::ContagionModel::kCustom;
  base.block_size = 4;
  base.seed = 3;

  // --- 1. private census ------------------------------------------------
  std::vector<uint32_t> activity(32);
  uint64_t true_total = 0;
  for (int v = 0; v < 32; v++) {
    activity[v] = 50 + 13 * static_cast<uint32_t>(v);
    true_total += activity[v];
  }
  programs::PrivateSumParams sum_params;
  sum_params.degree_bound = g.MaxDegree();
  sum_params.noise = ModestNoise();
  {
    engine::RunSpec spec = base;
    spec.custom_program = programs::BuildPrivateSumProgram(sum_params);
    spec.custom_states = programs::MakePrivateSumStates(activity, sum_params.value_bits);
    engine::RunReport report = engine::Engine(spec).Run();
    std::printf("1. activity census:   released %lld   (true %llu)\n",
                static_cast<long long>(report.released),
                static_cast<unsigned long long>(true_total));
  }

  // --- 2. influence diffusion --------------------------------------------
  programs::InfluenceParams inf_params;
  inf_params.degree_bound = g.MaxDegree();
  inf_params.iterations = 3;
  inf_params.out_shift = 3;
  inf_params.keep_shift = 1;
  inf_params.noise = ModestNoise();
  std::vector<uint16_t> seeds(32, 0);
  seeds[0] = 8000;   // seed account in cluster 1
  seeds[20] = 2000;  // seed account in cluster 2
  {
    engine::RunSpec spec = base;
    spec.custom_program = programs::BuildInfluenceProgram(inf_params);
    spec.custom_states = programs::MakeInfluenceStates(seeds);
    engine::RunReport report = engine::Engine(spec).Run();
    auto reference = programs::PlaintextInfluence(g, seeds, inf_params);
    int64_t expected = 0;
    for (uint16_t mass : reference) {
      expected += mass;
    }
    std::printf("2. influence mass:    released %lld   (exact %lld)\n",
                static_cast<long long>(report.released), static_cast<long long>(expected));
  }

  // --- 3. component count -------------------------------------------------
  programs::ComponentsParams comp_params;
  comp_params.degree_bound = g.MaxDegree();
  comp_params.iterations = 6;
  comp_params.label_bits = 6;
  comp_params.noise = ModestNoise();
  {
    engine::RunSpec spec = base;
    spec.custom_program = programs::BuildComponentsProgram(comp_params);
    spec.custom_states =
        programs::MakeComponentsStates(g.num_vertices(), comp_params.label_bits);
    engine::RunReport report = engine::Engine(spec).Run();
    std::printf("3. cluster count:     released %lld   (true %d)\n",
                static_cast<long long>(report.released),
                programs::WeaklyConnectedComponents(g));
  }

  std::printf("\nall three figures were computed under MPC with secret-shared state,\n"
              "encrypted edge transfers, and in-MPC geometric output noise.\n");
  return 0;
}
