// dstress_node: one bank of a TCP multi-process DStress run.
//
//   ./build/examples/dstress_node --node 3 --num-nodes 30 --driver 127.0.0.1:7000
//
// A driver (any engine run whose TransportSpec names the "tcp" backend and
// sets node_program to this binary) spawns one of these per bank; each
// joins the bank mesh and relays the run's wire frames. See
// src/net/tcp_node.h for the bootstrap protocol and src/cli/node_main.h for
// the flags.

#include "src/cli/node_main.h"

int main(int argc, char** argv) { return dstress::cli::NodeMain(argc, argv); }
