// dstress_node: one bank of a TCP multi-process DStress run — on the
// driver's machine or any other.
//
//   ./build/examples/dstress_node --bank 3 --num-nodes 30
//       --driver-host 10.0.0.1 --driver-port 7400
//
// A driver (any engine run whose TransportSpec names the "tcp" backend)
// either spawns one of these per bank (node_program) or, in external-nodes
// mode, waits for operators to start them — possibly on separate machines,
// the paper's one-party-per-EC2-machine deployment (README.md,
// "Quickstart: multi-machine tcp"). Each joins the bank mesh and relays
// the run's wire frames. See docs/wire-protocol.md for the bootstrap
// protocol and src/cli/node_main.h for the flags.

#include "src/cli/node_main.h"

int main(int argc, char** argv) { return dstress::cli::NodeMain(argc, argv); }
